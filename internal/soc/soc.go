// Package soc models heterogeneous mobile systems-on-chip: the processors
// (CPU big/small clusters, embedded GPU, NPU), their roofline-style layer
// cost model, the shared memory bus, kernel-launch and memory-copy
// overheads, thermal behaviour (paper Appendix B) and batching (Appendix D).
//
// This package substitutes for the paper's physical Kirin 990 / Snapdragon
// 778G / Snapdragon 870 testbeds. The planner only ever consumes latencies
// and bandwidth demands produced here, so reproducing the *relative*
// behaviour of the silicon (processor ordering NPU ≫ CPU_B ≥ GPU ≫ CPU_S,
// operator affinity, memory-boundedness) reproduces the planning problem.
package soc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hetero2pipe/internal/model"
)

// Kind identifies a processor class.
type Kind int

// Processor classes, ordered here by the paper's capability ranking.
const (
	KindNPU Kind = iota + 1
	KindCPUBig
	KindGPU
	KindCPUSmall
	KindDesktopGPU // CUDA reference used only in the Fig. 13 comparison
)

var kindNames = map[Kind]string{
	KindNPU:        "NPU",
	KindCPUBig:     "CPU_B",
	KindGPU:        "GPU",
	KindCPUSmall:   "CPU_S",
	KindDesktopGPU: "CUDA",
}

// String returns the short processor-class name used in the paper's figures.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is a known processor class.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Processor is one schedulable compute unit. CPU clusters are scheduled as a
// whole (per-cluster granularity): the paper's Appendix A shows per-core
// partitioning inside a cluster suffers up to 70 % slowdown from conflicting
// L2 misses, so — like the paper — we never split a cluster.
type Processor struct {
	// ID is unique within its SoC, e.g. "cpu-big".
	ID string
	// Kind is the processor class.
	Kind Kind
	// Cores is the core count (1 for GPU/NPU, which are indivisible).
	Cores int
	// PeakGFLOPS is the aggregate FP16 peak of the unit.
	PeakGFLOPS float64
	// Efficiency maps operator kinds to the achievable fraction of peak.
	// Missing kinds use DefaultEfficiency.
	Efficiency map[model.OpKind]float64
	// DefaultEfficiency is the fallback fraction of peak.
	DefaultEfficiency float64
	// SoloBandwidthGBps is the memory bandwidth the unit achieves running
	// alone (bounded by its memory-path width, below the bus total).
	SoloBandwidthGBps float64
	// L2Bytes is the last-level private cache; working sets above it go to
	// the shared bus (Observation 2).
	L2Bytes int64
	// LaunchOverhead is the fixed cost of dispatching one model slice
	// (kernel launch, command-queue submission, NPU graph load).
	LaunchOverhead time.Duration
	// DedicatedMemPath is the fraction of the unit's traffic served by a
	// private path that bypasses the shared bus. The paper attributes the
	// NPU's contention immunity to its "specialized design and dedicated
	// memory path".
	DedicatedMemPath float64
	// Thermal describes sustained-load throttling (Appendix B). A zero
	// value means no throttling.
	Thermal Thermal
	// Power describes the unit's busy/idle draw for energy accounting; a
	// zero value falls back to the class default (see PowerOf).
	Power Power
	// Degrade is the runtime derating state written by degradation events
	// (see Event); the zero value is nominal operation.
	Degrade Degradation
}

// Available reports whether the processor is currently in service.
func (p *Processor) Available() bool { return !p.Degrade.Offline }

// Supports reports whether the processor can execute the operator kind. Only
// NPUs restrict operator coverage; everything runs on CPUs and GPUs.
func (p *Processor) Supports(kind model.OpKind) bool {
	if p.Kind == KindNPU {
		return kind.NPUSupported()
	}
	return true
}

// SupportsLayer reports whether the processor can execute the layer.
func (p *Processor) SupportsLayer(l model.Layer) bool { return p.Supports(l.Kind) }

// efficiency returns the fraction of peak for an operator kind.
func (p *Processor) efficiency(kind model.OpKind) float64 {
	if e, ok := p.Efficiency[kind]; ok {
		return e
	}
	return p.DefaultEfficiency
}

// LayerTime returns the solo execution time of one layer on the processor,
// using a roofline model: the layer takes the larger of its compute time and
// its memory time, where working sets that spill the L2 pay full-traffic
// bandwidth cost and cache-resident layers pay a reduced one. The result is
// the T^e term of Eq. (2) at layer granularity, before thermal throttling.
//
// LayerTime returns +Inf when the processor cannot execute the layer's
// operator, mirroring the "error is reported due to unsupported operators"
// behaviour of Fig. 1; callers that want Band-style fallback must detect the
// unsupported layers first. An offline processor (degradation events)
// likewise returns +Inf for every layer, so freshly measured cost tables
// route all work to the surviving processors.
func (p *Processor) LayerTime(l model.Layer) time.Duration {
	if p.Degrade.Offline || !p.Supports(l.Kind) {
		return InfDuration
	}
	eff := p.efficiency(l.Kind)
	computeSec := l.FLOPs / (p.PeakGFLOPS * eff * 1e9)
	memSec := float64(l.TrafficBytes()) / (p.SoloBandwidthGBps * 1e9)
	if l.WorkingSetBytes <= p.L2Bytes {
		// Cache-resident: weights stream once, activations mostly hit.
		memSec *= cacheResidentTrafficFactor
	}
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	sec *= p.Thermal.SteadyStateFactor()
	sec *= p.Degrade.LatencyFactor()
	return time.Duration(sec * float64(time.Second))
}

// BusTrafficBytes returns the bytes of shared-bus traffic one execution of
// the layer generates on this processor. Activations always count in full:
// without cross-kernel fusion every intermediate tensor round-trips DRAM
// between kernels, which is what makes many-small-layer networks
// (SqueezeNet, GoogLeNet) bandwidth-hungry despite their low FLOPs
// (Observation 3). Weights are discounted when the working set is
// cache-resident and amplified by tiling re-fetches when it spills L2
// (Observation 2). Traffic served by a dedicated memory path (NPU) is
// excluded last. This is the quantity the contention model sums.
func (p *Processor) BusTrafficBytes(l model.Layer) float64 {
	acts := float64(l.InputBytes+l.OutputBytes) * activationPassFactor
	weights := float64(l.WeightBytes)
	if l.WorkingSetBytes > p.L2Bytes {
		amp := float64(l.WorkingSetBytes) / float64(p.L2Bytes)
		if amp > spillAmplificationMax {
			amp = spillAmplificationMax
		}
		weights *= amp
	} else {
		weights *= cacheResidentTrafficFactor
	}
	return (acts + weights) * (1 - p.DedicatedMemPath)
}

// Validate reports the first configuration problem, or nil.
func (p *Processor) Validate() error {
	switch {
	case p.ID == "":
		return errors.New("processor has empty ID")
	case !p.Kind.Valid():
		return fmt.Errorf("processor %q has invalid kind", p.ID)
	case p.Cores <= 0:
		return fmt.Errorf("processor %q has non-positive core count", p.ID)
	case p.PeakGFLOPS <= 0:
		return fmt.Errorf("processor %q has non-positive peak", p.ID)
	case p.DefaultEfficiency <= 0 || p.DefaultEfficiency > 1:
		return fmt.Errorf("processor %q default efficiency %g outside (0,1]", p.ID, p.DefaultEfficiency)
	case p.SoloBandwidthGBps <= 0:
		return fmt.Errorf("processor %q has non-positive bandwidth", p.ID)
	case p.DedicatedMemPath < 0 || p.DedicatedMemPath > 1:
		return fmt.Errorf("processor %q dedicated path %g outside [0,1]", p.ID, p.DedicatedMemPath)
	}
	if err := p.Degrade.Validate(); err != nil {
		return fmt.Errorf("processor %q: %w", p.ID, err)
	}
	for kind, e := range p.Efficiency {
		if e <= 0 || e > 1 {
			return fmt.Errorf("processor %q efficiency for %v = %g outside (0,1]", p.ID, kind, e)
		}
	}
	return nil
}

const (
	// cacheResidentTrafficFactor is the fraction of a cache-resident
	// layer's weight traffic that still reaches the shared bus
	// (compulsory streaming on first touch).
	cacheResidentTrafficFactor = 0.3
	// spillAmplificationMax caps the tiling re-fetch amplification of
	// weight traffic for working sets far beyond L2.
	spillAmplificationMax = 8.0
	// activationPassFactor models overlapping-tile re-reads of input
	// activations (im2col expansion, halo re-fetches): each activation
	// byte crosses the bus a few times per consuming kernel.
	activationPassFactor = 3.0
)

// InfDuration marks an impossible execution (unsupported operator).
const InfDuration = time.Duration(1<<63 - 1)

// SoC is a system-on-chip: an ordered processor set sharing one memory bus.
type SoC struct {
	// Name is the preset name, e.g. "Kirin990".
	Name string
	// Processors are ordered by computational capability, high to low, as
	// the paper's system model requires.
	Processors []Processor
	// BusBandwidthGBps is the total shared memory-bus capacity. The sum of
	// solo bandwidths exceeds it — that oversubscription is where
	// co-execution slowdown comes from.
	BusBandwidthGBps float64
	// CopyBandwidthGBps is the effective bandwidth of inter-processor
	// tensor copies on the unified memory (the T^c term of Eq. 2).
	CopyBandwidthGBps float64
	// CopyLatency is the fixed per-copy cost (cache flush, fence, driver).
	CopyLatency time.Duration
	// MemoryCapacityBytes is the memory available to inference (Eq. 6
	// bound); the paper measures ~2.5 GB available on the Kirin 990.
	MemoryCapacityBytes int64
	// MemFreqLevelsMHz are the DVFS memory-controller frequency steps, low
	// to high; Fig. 9's governor picks the lowest level whose bandwidth
	// covers demand.
	MemFreqLevelsMHz []int
	// BusDerate is the runtime bus-capacity fraction in (0, 1] written by
	// EventBandwidthSqueeze; 0 means nominal. It scales the co-execution
	// slowdown model's capacity, never the solo cost tables.
	BusDerate float64

	// epoch is the monotonic degradation-epoch counter: every Apply that
	// actually changes the SoC's runtime state (throttle, frequency,
	// offline/online, bus squeeze) increments it, so any state derived from
	// the SoC description — most importantly memoized whole plans — can
	// carry the epoch as a cheap validity token instead of re-hashing the
	// description. A no-op Apply (the event restates the current state)
	// leaves the epoch untouched. Mutations that bypass Apply must call
	// BumpEpoch themselves; reads and writes follow the same
	// single-writer discipline as every other SoC field.
	epoch uint64
	// journal is the bounded log of per-epoch deltas behind AffectedSince:
	// entry i records what the epoch bump to journal[i].epoch changed. Apply
	// appends the affected processor set (empty for bus squeezes); BumpEpoch
	// appends a wildcard entry, because an in-place mutation's blast radius
	// is unknown. Oldest entries are trimmed past epochJournalCap.
	journal []epochDelta
}

// epochDelta is one journal record: the state the bump to epoch changed.
type epochDelta struct {
	epoch uint64
	procs []int // affected processor indices; empty for bus-only deltas
	bus   bool  // the shared-bus derate changed
	wild  bool  // unknown delta (manual BumpEpoch)
}

// epochJournalCap bounds the journal. Deltas older than the cap make
// AffectedSince answer "unknown", which degrades consumers to a full
// recompute — correct, just slower — so the cap only needs to cover the
// plausible staleness window of a memo entry between planning rounds.
const epochJournalCap = 128

// recordDelta appends one journal entry for the current (just bumped)
// epoch, trimming the oldest past the cap.
func (s *SoC) recordDelta(d epochDelta) {
	d.epoch = s.epoch
	s.journal = append(s.journal, d)
	if len(s.journal) > epochJournalCap {
		s.journal = s.journal[len(s.journal)-epochJournalCap:]
	}
}

// AffectedSince reports what changed between the given epoch and the SoC's
// current one: the union of affected processor indices (sorted, deduplicated)
// and whether the shared-bus derate moved. ok is false when the answer is
// unknown — the span predates the journal's retention window, crosses a
// manual BumpEpoch (whose delta is unrecorded), or since lies in the future —
// in which case callers must assume everything changed. since equal to the
// current epoch returns (nil, false, true): nothing changed.
func (s *SoC) AffectedSince(since uint64) (procs []int, busChanged bool, ok bool) {
	if since == s.epoch {
		return nil, false, true
	}
	if since > s.epoch {
		return nil, false, false
	}
	// Every epoch in (since, current] must be covered by a journal entry;
	// entries are appended per bump, so coverage means the oldest retained
	// entry is at or below since+1.
	if len(s.journal) == 0 || s.journal[0].epoch > since+1 {
		return nil, false, false
	}
	seen := make(map[int]bool)
	for _, d := range s.journal {
		if d.epoch <= since {
			continue
		}
		if d.wild {
			return nil, false, false
		}
		if d.bus {
			busChanged = true
		}
		for _, k := range d.procs {
			if !seen[k] {
				seen[k] = true
				procs = append(procs, k)
			}
		}
	}
	sort.Ints(procs)
	return procs, busChanged, true
}

// Epoch returns the SoC's degradation epoch — the monotonic counter of
// state-changing Apply calls (plus manual BumpEpoch calls). Two reads
// returning the same value bracket a span in which no degradation event
// altered the SoC, which is what makes the epoch usable as a plan-cache
// validity token.
func (s *SoC) Epoch() uint64 { return s.epoch }

// BumpEpoch advances the degradation epoch by hand — required after
// mutating the SoC description in place without going through Apply
// (frequency sweeps, thermal experiments), so epoch-keyed caches cannot
// serve plans computed against the pre-mutation description. The journal
// records the bump as a wildcard delta: AffectedSince answers "unknown"
// across it, so incremental consumers conservatively recompute in full.
func (s *SoC) BumpEpoch() {
	s.epoch++
	s.recordDelta(epochDelta{wild: true})
}

// EffectiveBusBandwidthGBps returns the shared-bus capacity after any
// runtime bandwidth squeeze.
func (s *SoC) EffectiveBusBandwidthGBps() float64 {
	if s.BusDerate > 0 {
		return s.BusBandwidthGBps * s.BusDerate
	}
	return s.BusBandwidthGBps
}

// NumProcessors returns the processor count (the paper's K).
func (s *SoC) NumProcessors() int { return len(s.Processors) }

// Processor returns the processor with the given ID, or nil.
func (s *SoC) Processor(id string) *Processor {
	for i := range s.Processors {
		if s.Processors[i].ID == id {
			return &s.Processors[i]
		}
	}
	return nil
}

// ProcessorsOfKind returns the indices of processors of the given kind.
func (s *SoC) ProcessorsOfKind(kind Kind) []int {
	var out []int
	for i := range s.Processors {
		if s.Processors[i].Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// HasNPU reports whether the SoC includes an NPU.
func (s *SoC) HasNPU() bool { return len(s.ProcessorsOfKind(KindNPU)) > 0 }

// CopyTime returns the tensor-copy cost of moving b bytes between two
// processors' address spaces (T^c of Eq. 2). Copies between a processor and
// itself are free.
func (s *SoC) CopyTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes) / (s.CopyBandwidthGBps * 1e9)
	return s.CopyLatency + time.Duration(sec*float64(time.Second))
}

// Validate reports the first configuration problem, or nil.
func (s *SoC) Validate() error {
	if s.Name == "" {
		return errors.New("soc has empty name")
	}
	if len(s.Processors) == 0 {
		return fmt.Errorf("soc %q has no processors", s.Name)
	}
	seen := make(map[string]bool, len(s.Processors))
	for i := range s.Processors {
		p := &s.Processors[i]
		if err := p.Validate(); err != nil {
			return fmt.Errorf("soc %q: %w", s.Name, err)
		}
		if seen[p.ID] {
			return fmt.Errorf("soc %q has duplicate processor ID %q", s.Name, p.ID)
		}
		seen[p.ID] = true
	}
	if s.BusBandwidthGBps <= 0 {
		return fmt.Errorf("soc %q has non-positive bus bandwidth", s.Name)
	}
	if s.CopyBandwidthGBps <= 0 {
		return fmt.Errorf("soc %q has non-positive copy bandwidth", s.Name)
	}
	if s.MemoryCapacityBytes <= 0 {
		return fmt.Errorf("soc %q has non-positive memory capacity", s.Name)
	}
	for i := 1; i < len(s.MemFreqLevelsMHz); i++ {
		if s.MemFreqLevelsMHz[i] <= s.MemFreqLevelsMHz[i-1] {
			return fmt.Errorf("soc %q memory frequency levels not increasing", s.Name)
		}
	}
	if s.BusDerate != 0 && (s.BusDerate <= 0 || s.BusDerate > 1) {
		return fmt.Errorf("soc %q bus derate %g outside (0,1]", s.Name, s.BusDerate)
	}
	return nil
}
