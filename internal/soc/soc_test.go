package soc

import (
	"testing"
	"testing/quick"
	"time"

	"hetero2pipe/internal/model"
)

func soloModelTime(p *Processor, m *model.Model) time.Duration {
	var sum time.Duration
	for _, l := range m.Layers {
		t := p.LayerTime(l)
		if t == InfDuration {
			return InfDuration
		}
		sum += t
	}
	return sum + p.LaunchOverhead
}

func TestPresetsValidate(t *testing.T) {
	for _, s := range append(Presets(), DesktopCUDA()) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", s.Name, err)
		}
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"Kirin990", "Snapdragon778G", "Snapdragon870", "DesktopCUDA"} {
		if PresetByName(name) == nil {
			t.Errorf("PresetByName(%q) = nil", name)
		}
	}
	if PresetByName("nope") != nil {
		t.Error("PresetByName(nope) != nil")
	}
}

// TestCapabilityOrdering pins the paper's processor ranking
// NPU ≫ CPU_B ≥ GPU ≫ CPU_S for a fully NPU-supported conv network.
func TestCapabilityOrdering(t *testing.T) {
	m := model.MustByName(model.ResNet50)
	for _, s := range Presets() {
		timeOf := func(kind Kind) time.Duration {
			idx := s.ProcessorsOfKind(kind)
			if len(idx) == 0 {
				t.Fatalf("%s: no processor of kind %v", s.Name, kind)
			}
			return soloModelTime(&s.Processors[idx[0]], m)
		}
		npu, big, gpu, small := timeOf(KindNPU), timeOf(KindCPUBig), timeOf(KindGPU), timeOf(KindCPUSmall)
		if !(npu < big && npu < gpu) {
			t.Errorf("%s: NPU %v not fastest (big %v, gpu %v)", s.Name, npu, big, gpu)
		}
		if !(small > big && small > gpu) {
			t.Errorf("%s: CPU_S %v not slowest (big %v, gpu %v)", s.Name, small, big, gpu)
		}
		// Big and GPU on par: within ~3× of each other.
		ratio := float64(big) / float64(gpu)
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s: CPU_B/GPU ratio %.2f not on par", s.Name, ratio)
		}
	}
}

// TestCalibrationAnchors checks the paper's absolute anchor points within
// loose bands.
func TestCalibrationAnchors(t *testing.T) {
	// MobileNetV2 near 76 FPS on the 778G big cluster (paper intro).
	sd := Snapdragon778G()
	big := &sd.Processors[sd.ProcessorsOfKind(KindCPUBig)[0]]
	mb := soloModelTime(big, model.MustByName(model.MobileNetV2))
	if mb < 4*time.Millisecond || mb > 80*time.Millisecond {
		t.Errorf("MobileNetV2 on 778G CPU_B = %v, want 4–80 ms", mb)
	}
	// ResNet50 above 100 FPS on the Kirin 990 NPU (paper intro).
	k := Kirin990()
	npu := &k.Processors[k.ProcessorsOfKind(KindNPU)[0]]
	rn := soloModelTime(npu, model.MustByName(model.ResNet50))
	if rn > 12*time.Millisecond {
		t.Errorf("ResNet50 on Kirin990 NPU = %v, want ≤ 12 ms (>100 FPS with margin)", rn)
	}
	// BERT on the Kirin big cluster in the hundreds of milliseconds
	// (Table II: 553.91 ms).
	bigK := &k.Processors[k.ProcessorsOfKind(KindCPUBig)[0]]
	bt := soloModelTime(bigK, model.MustByName(model.BERT))
	if bt < 100*time.Millisecond || bt > 2*time.Second {
		t.Errorf("BERT on Kirin990 CPU_B = %v, want 0.1–2 s", bt)
	}
}

func TestNPUUnsupportedIsInf(t *testing.T) {
	k := Kirin990()
	npu := &k.Processors[k.ProcessorsOfKind(KindNPU)[0]]
	for _, name := range []string{model.BERT, model.YOLOv4, model.ViT} {
		if got := soloModelTime(npu, model.MustByName(name)); got != InfDuration {
			t.Errorf("%s on NPU = %v, want InfDuration (unsupported operators)", name, got)
		}
	}
	for _, name := range []string{model.ResNet50, model.VGG16, model.SqueezeNet} {
		if got := soloModelTime(npu, model.MustByName(name)); got == InfDuration {
			t.Errorf("%s on NPU unsupported, want supported", name)
		}
	}
}

func TestLayerTimePositive(t *testing.T) {
	k := Kirin990()
	big := &k.Processors[k.ProcessorsOfKind(KindCPUBig)[0]]
	for _, m := range model.All() {
		for _, l := range m.Layers {
			if lt := big.LayerTime(l); lt <= 0 {
				t.Fatalf("%s/%s: LayerTime = %v, want > 0", m.Name, l.Name, lt)
			}
		}
	}
}

// Property: layer time scales monotonically with FLOPs for compute-bound
// layers of the same shape.
func TestLayerTimeMonotoneInFLOPs(t *testing.T) {
	k := Kirin990()
	big := &k.Processors[k.ProcessorsOfKind(KindCPUBig)[0]]
	prop := func(a, b uint32) bool {
		fa, fb := float64(a%1_000_000)+1, float64(b%1_000_000)+1
		la := model.Layer{Name: "a", Kind: model.OpConv, FLOPs: fa * 1e3, InputBytes: 1024, OutputBytes: 1024, WorkingSetBytes: 1024}
		lb := la
		lb.FLOPs = fb * 1e3
		ta, tb := big.LayerTime(la), big.LayerTime(lb)
		if fa < fb {
			return ta <= tb
		}
		return ta >= tb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBusTrafficDedicatedPath(t *testing.T) {
	l := model.Layer{Name: "x", Kind: model.OpConv, InputBytes: 1 << 20, OutputBytes: 1 << 20, WeightBytes: 1 << 20, WorkingSetBytes: 64 << 20}
	withPath := Processor{DedicatedMemPath: 0.75, L2Bytes: 1 << 20}
	without := Processor{DedicatedMemPath: 0, L2Bytes: 1 << 20}
	if got, want := withPath.BusTrafficBytes(l), without.BusTrafficBytes(l)*0.25; got != want {
		t.Errorf("BusTrafficBytes with dedicated path = %g, want %g", got, want)
	}
}

func TestBusTrafficWeightLocality(t *testing.T) {
	p := Processor{L2Bytes: 1 << 20}
	resident := model.Layer{Name: "x", Kind: model.OpConv, InputBytes: 1 << 10, OutputBytes: 1 << 10, WeightBytes: 1 << 19, WorkingSetBytes: 1 << 19}
	spilled := resident
	spilled.WorkingSetBytes = 8 << 20
	if got, want := p.BusTrafficBytes(resident), p.BusTrafficBytes(spilled); got >= want {
		t.Errorf("resident weight traffic %g not below spilled %g", got, want)
	}
	// Activations count in full either way: zero-weight layers see no
	// locality discount.
	stream := model.Layer{Name: "s", Kind: model.OpActivation, InputBytes: 1 << 20, OutputBytes: 1 << 20}
	if got := p.BusTrafficBytes(stream); got < float64(stream.InputBytes+stream.OutputBytes) {
		t.Errorf("streaming traffic %g below raw activation bytes", got)
	}
}

func TestThermal(t *testing.T) {
	th := cpuThermal()
	if th.SteadyStateFactor() <= 1 {
		t.Errorf("CPU steady-state factor = %g, want > 1", th.SteadyStateFactor())
	}
	if f := acceleratorThermal().SteadyStateFactor(); f != 1 {
		t.Errorf("accelerator steady-state factor = %g, want 1", f)
	}
	// Temperature rises monotonically toward steady state.
	prev := th.TempAt(0)
	for _, s := range []float64{10, 30, 60, 120, 600} {
		cur := th.TempAt(s)
		if cur < prev {
			t.Errorf("TempAt(%g) = %g < TempAt(prev) = %g", s, cur, prev)
		}
		prev = cur
	}
	if prev > th.SteadyC+0.1 {
		t.Errorf("TempAt(600) = %g exceeds steady %g", prev, th.SteadyC)
	}
	if f := th.FactorAt(th.AmbientC); f != 1 {
		t.Errorf("FactorAt(ambient) = %g, want 1", f)
	}
	if zero := (Thermal{}); zero.SteadyStateFactor() != 1 {
		t.Error("zero-value Thermal must not throttle")
	}
}

func TestCopyTime(t *testing.T) {
	s := Kirin990()
	if got := s.CopyTime(0); got != 0 {
		t.Errorf("CopyTime(0) = %v, want 0", got)
	}
	small, big := s.CopyTime(1<<10), s.CopyTime(1<<24)
	if small >= big {
		t.Errorf("CopyTime not monotone: %v >= %v", small, big)
	}
	if small < s.CopyLatency {
		t.Errorf("CopyTime(1KiB) = %v below fixed latency %v", small, s.CopyLatency)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Kirin990()
	mutations := []func(*SoC){
		func(s *SoC) { s.Name = "" },
		func(s *SoC) { s.Processors = nil },
		func(s *SoC) { s.Processors[1].ID = s.Processors[0].ID },
		func(s *SoC) { s.BusBandwidthGBps = 0 },
		func(s *SoC) { s.CopyBandwidthGBps = -1 },
		func(s *SoC) { s.MemoryCapacityBytes = 0 },
		func(s *SoC) { s.MemFreqLevelsMHz = []int{800, 800} },
		func(s *SoC) { s.Processors[0].PeakGFLOPS = 0 },
		func(s *SoC) { s.Processors[0].DefaultEfficiency = 2 },
		func(s *SoC) { s.Processors[0].Cores = 0 },
		func(s *SoC) { s.Processors[0].DedicatedMemPath = 1.5 },
		func(s *SoC) { s.Processors[0].Efficiency[model.OpConv] = 0 },
	}
	for i, mutate := range mutations {
		s := Kirin990()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("pristine preset invalid: %v", err)
	}
}

func TestProcessorLookup(t *testing.T) {
	s := Kirin990()
	if p := s.Processor("cpu-big"); p == nil || p.Kind != KindCPUBig {
		t.Error("Processor(cpu-big) lookup failed")
	}
	if p := s.Processor("nope"); p != nil {
		t.Error("Processor(nope) != nil")
	}
	if !s.HasNPU() {
		t.Error("Kirin990 should have an NPU")
	}
}

func TestBatchAffineOnMobile(t *testing.T) {
	s := Kirin990()
	big := &s.Processors[s.ProcessorsOfKind(KindCPUBig)[0]]
	m := model.MustByName(model.MobileNetV2)
	// Affine: marginal cost is constant for n ≥ 2.
	m2 := MarginalBatchCost(big, m, 2)
	for n := 3; n <= 16; n++ {
		mn := MarginalBatchCost(big, m, n)
		diff := float64(mn-m2) / float64(m2)
		if diff < -0.01 || diff > 0.01 {
			t.Errorf("marginal cost at batch %d = %v deviates from %v", n, mn, m2)
		}
	}
	// Batch 1 pays the fixed weight-load + launch cost on top.
	if b1 := BatchLatency(big, m, 1); b1 <= m2 {
		t.Errorf("BatchLatency(1) = %v not above per-sample marginal %v", b1, m2)
	}
}

func TestBatchSublinearOnCUDA(t *testing.T) {
	s := DesktopCUDA()
	cuda := &s.Processors[0]
	m := model.MustByName(model.MobileNetV2)
	lat1 := BatchLatency(cuda, m, 1)
	lat4 := BatchLatency(cuda, m, 4)
	if float64(lat4) >= 4*float64(lat1) {
		t.Errorf("CUDA batching not sub-linear: lat(4)=%v, 4·lat(1)=%v", lat4, 4*lat1)
	}
}

func TestBatchUnsupported(t *testing.T) {
	k := Kirin990()
	npu := &k.Processors[k.ProcessorsOfKind(KindNPU)[0]]
	if got := BatchLatency(npu, model.MustByName(model.BERT), 4); got != InfDuration {
		t.Errorf("BatchLatency(NPU, BERT) = %v, want InfDuration", got)
	}
}

func TestAlignmentBatch(t *testing.T) {
	s := Kirin990()
	big := &s.Processors[s.ProcessorsOfKind(KindCPUBig)[0]]
	light := model.MustByName(model.SqueezeNet)
	heavy := soloModelTime(big, model.MustByName(model.BERT))
	n := AlignmentBatch(big, light, heavy, 64)
	if n < 2 {
		t.Errorf("AlignmentBatch = %d, want ≥ 2 (20–40× light/heavy gap)", n)
	}
	if got := BatchLatency(big, light, n); got < heavy && n < 64 {
		t.Errorf("batch %d latency %v below target %v", n, got, heavy)
	}
	if got := AlignmentBatch(big, light, time.Nanosecond, 64); got != 1 {
		t.Errorf("AlignmentBatch(tiny target) = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if KindNPU.String() != "NPU" || KindCPUBig.String() != "CPU_B" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("Kind(42).String() = %q", Kind(42).String())
	}
}

func TestExtraPresetsValidate(t *testing.T) {
	for _, s := range AllPresets() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", s.Name, err)
		}
	}
	for _, name := range []string{"Snapdragon8Gen2", "Dimensity9200"} {
		if PresetByName(name) == nil {
			t.Errorf("PresetByName(%q) = nil", name)
		}
	}
	// The flagship NPUs outclass the evaluation trio's.
	k990 := Kirin990().Processor("npu")
	for _, name := range []string{"Snapdragon8Gen2", "Dimensity9200"} {
		p := PresetByName(name).Processor("npu")
		if p.PeakGFLOPS <= k990.PeakGFLOPS {
			t.Errorf("%s NPU peak %.0f not above Kirin990's %.0f", name, p.PeakGFLOPS, k990.PeakGFLOPS)
		}
	}
}

func TestPowerDefaults(t *testing.T) {
	s := Kirin990()
	for i := range s.Processors {
		p := &s.Processors[i]
		pw := p.PowerOf()
		if pw.BusyWatts <= 0 || pw.IdleWatts <= 0 || pw.IdleWatts >= pw.BusyWatts {
			t.Errorf("%s: implausible power %+v", p.ID, pw)
		}
	}
	// Explicit power overrides the class default.
	custom := Processor{Kind: KindGPU, Power: Power{BusyWatts: 9, IdleWatts: 1}}
	if got := custom.PowerOf(); got.BusyWatts != 9 {
		t.Errorf("explicit power ignored: %+v", got)
	}
	if e := custom.EnergyJoules(2*time.Second, time.Second); e != 19 {
		t.Errorf("EnergyJoules = %g, want 19", e)
	}
	// Big cores cost more per second than the NPU (the energy story).
	if defaultPower(KindCPUBig).BusyWatts <= defaultPower(KindNPU).BusyWatts {
		t.Error("CPU big busy power not above NPU's")
	}
}
