package soc

import (
	"fmt"

	"hetero2pipe/internal/model"
)

// Cluster splitting (Appendix A). Pipe-it partitions CPU clusters at
// per-core granularity; the paper measures up to ~70 % slowdown from
// conflicting L2 evictions (Fig. 10) and therefore schedules clusters
// whole. SplitCluster derives an SoC in which one CPU cluster is divided
// into two sub-stages so that design point can be evaluated directly: each
// sub-partition receives a proportional share of compute and of the shared
// L2 (halved again for conflict misses), and both inherit a slowdown-prone
// position on the cluster's single memory port via a reduced solo
// bandwidth. The ablation experiment shows this loses to whole-cluster
// scheduling, reproducing the paper's design decision.

// SplitCluster returns a copy of s in which the first processor of the
// given kind is replaced by two sub-cluster stages of coresA and coresB
// cores (coresA + coresB must equal the cluster's core count). Processor
// order is preserved, with the two sub-stages adjacent.
func SplitCluster(s *SoC, kind Kind, coresA int) (*SoC, error) {
	idxs := s.ProcessorsOfKind(kind)
	if len(idxs) == 0 {
		return nil, fmt.Errorf("soc: no processor of kind %v to split", kind)
	}
	idx := idxs[0]
	base := s.Processors[idx]
	if base.Kind != KindCPUBig && base.Kind != KindCPUSmall {
		return nil, fmt.Errorf("soc: %s is indivisible (GPU/NPU cannot be partitioned)", base.ID)
	}
	coresB := base.Cores - coresA
	if coresA < 1 || coresB < 1 {
		return nil, fmt.Errorf("soc: cannot split %d cores into %d + %d", base.Cores, coresA, coresB)
	}

	sub := func(suffix string, cores int) Processor {
		p := base
		frac := float64(cores) / float64(base.Cores)
		p.ID = base.ID + suffix
		p.Cores = cores
		p.PeakGFLOPS = base.PeakGFLOPS * frac
		// Shared L2: proportional share, halved again by conflict misses
		// between the co-resident partitions (Fig. 10's mechanism).
		p.L2Bytes = int64(float64(base.L2Bytes) * frac / 2)
		// The cluster's memory port is shared; either partition alone can
		// burst to most of it, but sustained solo bandwidth shrinks.
		p.SoloBandwidthGBps = base.SoloBandwidthGBps * (0.5 + 0.5*frac)
		// Efficiency maps are shared immutable references; copy to keep
		// the derived SoC independent.
		eff := make(map[model.OpKind]float64, len(base.Efficiency))
		for k, v := range base.Efficiency {
			eff[k] = v
		}
		p.Efficiency = eff
		return p
	}

	out := &SoC{
		Name:                s.Name + "-split",
		Processors:          make([]Processor, 0, len(s.Processors)+1),
		BusBandwidthGBps:    s.BusBandwidthGBps,
		CopyBandwidthGBps:   s.CopyBandwidthGBps,
		CopyLatency:         s.CopyLatency,
		MemoryCapacityBytes: s.MemoryCapacityBytes,
		MemFreqLevelsMHz:    append([]int(nil), s.MemFreqLevelsMHz...),
	}
	for i := range s.Processors {
		if i == idx {
			out.Processors = append(out.Processors, sub("-a", coresA), sub("-b", coresB))
			continue
		}
		out.Processors = append(out.Processors, s.Processors[i])
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("soc: split produced invalid SoC: %w", err)
	}
	return out, nil
}
