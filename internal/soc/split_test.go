package soc

import (
	"testing"

	"hetero2pipe/internal/model"
)

func TestSplitClusterStructure(t *testing.T) {
	base := Kirin990()
	split, err := SplitCluster(base, KindCPUBig, 2)
	if err != nil {
		t.Fatalf("SplitCluster: %v", err)
	}
	if err := split.Validate(); err != nil {
		t.Fatalf("split SoC invalid: %v", err)
	}
	if got, want := split.NumProcessors(), base.NumProcessors()+1; got != want {
		t.Fatalf("split has %d processors, want %d", got, want)
	}
	a, b := split.Processor("cpu-big-a"), split.Processor("cpu-big-b")
	if a == nil || b == nil {
		t.Fatal("sub-cluster processors missing")
	}
	orig := base.Processor("cpu-big")
	if a.Cores+b.Cores != orig.Cores {
		t.Errorf("core split %d+%d != %d", a.Cores, b.Cores, orig.Cores)
	}
	if a.PeakGFLOPS+b.PeakGFLOPS > orig.PeakGFLOPS+1e-9 {
		t.Error("split created compute from nothing")
	}
	if a.L2Bytes >= orig.L2Bytes {
		t.Error("sub-cluster keeps full L2; conflict sharing not applied")
	}
	if a.SoloBandwidthGBps >= orig.SoloBandwidthGBps {
		t.Error("sub-cluster keeps full memory-port bandwidth")
	}
	// Efficiency map must be an independent copy.
	a.Efficiency[model.OpConv] = 0.01
	if base.Processor("cpu-big").Efficiency[model.OpConv] == 0.01 {
		t.Error("split shares efficiency map with the base SoC")
	}
}

func TestSplitClusterErrors(t *testing.T) {
	base := Kirin990()
	if _, err := SplitCluster(base, KindGPU, 1); err == nil {
		t.Error("splitting the GPU accepted; GPUs are indivisible")
	}
	if _, err := SplitCluster(base, KindCPUBig, 0); err == nil {
		t.Error("0-core partition accepted")
	}
	if _, err := SplitCluster(base, KindCPUBig, 4); err == nil {
		t.Error("4+0 partition accepted")
	}
	noCPU := &SoC{
		Name:                "gpuonly",
		Processors:          []Processor{Kirin990().Processors[2]},
		BusBandwidthGBps:    10,
		CopyBandwidthGBps:   5,
		MemoryCapacityBytes: 1 << 30,
	}
	if _, err := SplitCluster(noCPU, KindCPUBig, 2); err == nil {
		t.Error("splitting a missing cluster accepted")
	}
}

// TestSplitClusterSlower: a sub-partitioned cluster executes any model
// slower than the whole cluster (fewer cores, shared L2 conflicts).
func TestSplitClusterSlower(t *testing.T) {
	base := Kirin990()
	split, err := SplitCluster(base, KindCPUBig, 2)
	if err != nil {
		t.Fatal(err)
	}
	whole := base.Processor("cpu-big")
	sub := split.Processor("cpu-big-a")
	for _, name := range []string{model.ResNet50, model.BERT} {
		m := model.MustByName(name)
		var wt, st float64
		for _, l := range m.Layers {
			wt += whole.LayerTime(l).Seconds()
			st += sub.LayerTime(l).Seconds()
		}
		if st <= wt {
			t.Errorf("%s: sub-cluster %.3fs not slower than whole cluster %.3fs", name, st, wt)
		}
	}
}
