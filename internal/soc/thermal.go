package soc

import "math"

// Thermal models sustained-load throttling (paper Appendix B): under
// continuous inference the CPU clusters exceed 60 °C and shed frequency,
// while the GPU/NPU stay inside a 50 °C envelope. The paper runs all
// experiments at the thermal steady state, so the substrate exposes the
// steady-state slowdown factor directly and a simple first-order temperature
// trajectory for the Appendix-B figure.
type Thermal struct {
	// AmbientC is the idle temperature.
	AmbientC float64
	// SteadyC is the fully-loaded steady-state temperature.
	SteadyC float64
	// ThrottleC is the threshold above which frequency scaling engages.
	ThrottleC float64
	// MaxSlowdown is the latency dilation factor at SteadyC (≥ 1).
	MaxSlowdown float64
	// TimeConstantSec is the first-order heating time constant.
	TimeConstantSec float64
}

// zero value: no throttling.

// TempAt returns the temperature after t seconds of continuous full load,
// following a first-order exponential approach to SteadyC.
func (th Thermal) TempAt(seconds float64) float64 {
	if th.TimeConstantSec <= 0 || th.SteadyC <= th.AmbientC {
		return th.AmbientC
	}
	frac := 1 - expNeg(seconds/th.TimeConstantSec)
	return th.AmbientC + (th.SteadyC-th.AmbientC)*frac
}

// FactorAt returns the latency dilation factor at the given temperature:
// 1 below ThrottleC, rising linearly to MaxSlowdown at SteadyC.
func (th Thermal) FactorAt(tempC float64) float64 {
	if th.MaxSlowdown <= 1 || th.SteadyC <= th.ThrottleC || tempC <= th.ThrottleC {
		return 1
	}
	frac := (tempC - th.ThrottleC) / (th.SteadyC - th.ThrottleC)
	if frac > 1 {
		frac = 1
	}
	return 1 + (th.MaxSlowdown-1)*frac
}

// SteadyStateFactor returns the dilation factor at thermal steady state —
// the regime in which the paper profiles and evaluates everything.
func (th Thermal) SteadyStateFactor() float64 {
	return th.FactorAt(th.SteadyC)
}

// expNeg computes e^-x clamped to x ≥ 0.
func expNeg(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}
