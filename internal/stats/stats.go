// Package stats provides the small numeric helpers the experiment harness
// uses: central tendency, quantiles, linear regression (for the Fig. 12
// bubble-latency fit) and speedup aggregation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned for empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// LinearFit is an ordinary-least-squares line y = Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine fits y against x by least squares.
func FitLine(x, y []float64) (LinearFit, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Pearson returns the Pearson correlation coefficient.
func Pearson(x, y []float64) float64 {
	fit, err := FitLine(x, y)
	if err != nil {
		return math.NaN()
	}
	r := math.Sqrt(fit.R2)
	if fit.Slope < 0 {
		r = -r
	}
	return r
}

// Speedups returns element-wise base[i]/test[i].
func Speedups(base, test []float64) []float64 {
	n := len(base)
	if len(test) < n {
		n = len(test)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if test[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = base[i] / test[i]
	}
	return out
}

// Max returns the maximum value.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum value.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
