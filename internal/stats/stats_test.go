package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean mismatch")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("GeoMean mismatch")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negatives not NaN")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("constant stddev != 0")
	}
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Error("StdDev([1,3]) != 1")
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if !almost(Median(xs), 3) {
		t.Error("median mismatch")
	}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 5) {
		t.Error("extreme quantiles mismatch")
	}
	if !almost(Quantile(xs, 0.25), 2) {
		t.Error("q25 mismatch")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2) || !almost(fit.Intercept, 1) || !almost(fit.R2, 1) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPearsonSign(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if !almost(Pearson(x, up), 1) {
		t.Error("perfect positive correlation != 1")
	}
	if !almost(Pearson(x, down), -1) {
		t.Error("perfect negative correlation != -1")
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{10, 20}, []float64{5, 0})
	if !almost(got[0], 2) || !math.IsInf(got[1], 1) {
		t.Errorf("Speedups = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Error("Min/Max mismatch")
	}
	if !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Error("empty Min/Max not NaN")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	xs := []float64{4, 8, 15, 16, 23, 42}
	prop := func(a, b uint8) bool {
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
