package stream

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

// FuzzStreamDegradation throws arbitrary degradation events at a small
// burst and checks the runtime's invariants: either the run errors cleanly
// or every request completes with consistent accounting. The seeds cover
// the headline scenario — a processor going offline mid-window — plus a
// throttle, a bus squeeze and a recovery pair.
func FuzzStreamDegradation(f *testing.F) {
	f.Add(uint8(0), uint8(2), int64(2_000_000), int64(0), 2.0)       // npu offline mid-window
	f.Add(uint8(2), uint8(0), int64(500_000), int64(0), 1.5)         // gpu throttle early
	f.Add(uint8(0), uint8(4), int64(1_000_000), int64(0), 0.5)       // bus squeeze
	f.Add(uint8(1), uint8(2), int64(100_000), int64(4_000_000), 1.0) // cpu-big offline, then online
	f.Fuzz(func(t *testing.T, procSel, kindSel uint8, atNanos, recoverNanos int64, factor float64) {
		s := soc.Kirin990()
		procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
		kinds := []soc.EventKind{
			soc.EventThermalThrottle, soc.EventFrequencyScale,
			soc.EventProcessorOffline, soc.EventProcessorOnline,
			soc.EventBandwidthSqueeze,
		}
		ev := soc.Event{
			Kind:      kinds[int(kindSel)%len(kinds)],
			Processor: procs[int(procSel)%len(procs)],
			At:        time.Duration(atNanos),
			Factor:    factor,
		}
		if ev.Kind == soc.EventBandwidthSqueeze {
			ev.Processor = ""
		}
		events := []soc.Event{ev}
		if recoverNanos > 0 && ev.Kind == soc.EventProcessorOffline {
			events = append(events, soc.Event{
				Kind: soc.EventProcessorOnline, Processor: ev.Processor,
				At: ev.At + time.Duration(recoverNanos),
			})
		}
		for _, e := range events {
			if e.Validate() != nil {
				t.Skip("invalid event")
			}
		}
		pl, err := core.NewPlanner(s, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Events = events
		sched, err := NewScheduler(pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		models, err := workload.Instantiate([]string{model.ResNet50, model.SqueezeNet, model.MobileNetV2})
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, len(models))
		for i, m := range models {
			reqs[i] = Request{Model: m, Arrival: time.Duration(i) * 100 * time.Microsecond}
		}
		res, err := sched.Run(reqs, pipeline.DefaultOptions())
		if err != nil {
			// Degradation can legitimately make the stream unservable
			// (offline CPU with no recovery); the error must surface, not
			// hang or panic.
			return
		}
		for i := range reqs {
			if res.Completions[i] < reqs[i].Arrival {
				t.Errorf("request %d completes at %v before arrival %v", i, res.Completions[i], reqs[i].Arrival)
			}
			if res.Completions[i] > res.Makespan {
				t.Errorf("request %d completion %v beyond makespan %v", i, res.Completions[i], res.Makespan)
			}
		}
		if res.Windows != len(res.WindowStats) {
			t.Errorf("Windows %d != len(WindowStats) %d", res.Windows, len(res.WindowStats))
		}
		interrupted, requeued, completed := 0, 0, 0
		for _, ws := range res.WindowStats {
			if ws.Interrupted {
				interrupted++
			}
			requeued += ws.Requeued
			completed += ws.Completed
		}
		if interrupted != res.Replans {
			t.Errorf("interrupted windows %d != Replans %d", interrupted, res.Replans)
		}
		if requeued != res.Retried {
			t.Errorf("window requeues %d != Retried %d", requeued, res.Retried)
		}
		if completed != len(reqs) {
			t.Errorf("window completions %d != requests %d", completed, len(reqs))
		}
		if res.EventsApplied > len(events) {
			t.Errorf("EventsApplied %d > injected %d", res.EventsApplied, len(events))
		}
	})
}
