package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func burstRequests(t *testing.T, names ...string) []Request {
	t.Helper()
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Request, len(models))
	for i, m := range models {
		out[i] = Request{Model: m}
	}
	return out
}

func checkAllComplete(t *testing.T, reqs []Request, res *Result) {
	t.Helper()
	for i := range reqs {
		if res.Completions[i] < reqs[i].Arrival || res.Completions[i] <= 0 {
			t.Errorf("request %d completion %v inconsistent with arrival %v",
				i, res.Completions[i], reqs[i].Arrival)
		}
		if res.Completions[i] > res.Makespan {
			t.Errorf("request %d completes at %v after makespan %v",
				i, res.Completions[i], res.Makespan)
		}
	}
}

// TestStreamDegradationOfflineReplan is the acceptance scenario: the NPU
// goes offline strictly inside the first window's execution. The window
// must be interrupted and replanned onto the surviving processors, every
// request must still complete, and the result must report the replan.
func TestStreamDegradationOfflineReplan(t *testing.T) {
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	// Baseline run (no events) to learn the first window's makespan.
	base := newScheduler(t, DefaultConfig())
	baseRes, err := base.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseRes.Replans != 0 || baseRes.EventsApplied != 0 {
		t.Fatalf("baseline reports degradation activity: %+v", baseRes)
	}

	cfg := DefaultConfig()
	cfg.Events = []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: baseRes.WindowStats[0].End / 3},
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := burstRequests(t, names...)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.Replans < 1 {
		t.Errorf("expected at least one replan, got %d", res.Replans)
	}
	if res.Retried < 1 {
		t.Errorf("expected requeued requests, got Retried=%d", res.Retried)
	}
	if res.EventsApplied != 1 {
		t.Errorf("EventsApplied = %d, want 1", res.EventsApplied)
	}
	interrupted := 0
	for _, ws := range res.WindowStats {
		if ws.Interrupted {
			interrupted++
			if ws.Requeued < 1 {
				t.Error("interrupted window requeued nothing")
			}
			if ws.End != cfg.Events[0].At {
				t.Errorf("interrupted window ends at %v, want event time %v", ws.End, cfg.Events[0].At)
			}
		}
	}
	if interrupted != res.Replans {
		t.Errorf("interrupted windows %d != Replans %d", interrupted, res.Replans)
	}
	if !pl.SoC().Processors[0].Degrade.Offline {
		t.Error("npu not marked offline after the run")
	}
	// The degraded tail must be slower than the full-SoC baseline.
	if res.Makespan <= baseRes.Makespan {
		t.Errorf("degraded makespan %v not above baseline %v", res.Makespan, baseRes.Makespan)
	}
}

// TestStreamDegradationPartialInvalidation: a throttle on one processor
// between two identical bursts must re-measure only that processor's cost
// tables — every lookup in the second burst still reports a cache hit for
// the untouched tables.
func TestStreamDegradationPartialInvalidation(t *testing.T) {
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet}
	cfg := Config{MaxWindow: 8, MaxBatch: 1}
	warm, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != uint64(len(names)) {
		t.Fatalf("cold run misses = %d, want %d", res.CacheMisses, len(names))
	}

	cfg.Events = []soc.Event{{Kind: soc.EventThermalThrottle, Processor: "gpu", Factor: 2}}
	hot, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = hot.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Each model re-measures the throttled gpu table (a miss) while reusing
	// the other processors' tables (a hit on the same lookup).
	if res.CacheMisses != uint64(len(names)) {
		t.Errorf("post-throttle misses = %d, want %d (gpu tables only)", res.CacheMisses, len(names))
	}
	if res.CacheHits != uint64(len(names)) {
		t.Errorf("post-throttle hits = %d, want %d (unaffected tables reused)", res.CacheHits, len(names))
	}

	// A third identical burst is fully warm again.
	cold, err := NewScheduler(pl, Config{MaxWindow: 8, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err = cold.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 || res.CacheHits != uint64(len(names)) {
		t.Errorf("re-warmed run hits=%d misses=%d, want %d/0", res.CacheHits, res.CacheMisses, len(names))
	}
}

// TestStreamDegradationRetryBackoff: every processor goes offline before
// the burst, and comes back a few milliseconds later. Planning must fail,
// back off on the virtual clock until the recovery events come due, then
// complete the whole stream.
func TestStreamDegradationRetryBackoff(t *testing.T) {
	procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
	var events []soc.Event
	for _, p := range procs {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: 100 * time.Microsecond})
		events = append(events, soc.Event{Kind: soc.EventProcessorOnline, Processor: p, At: 5 * time.Millisecond})
	}
	cfg := Config{MaxWindow: 8, MaxBatch: 1, MaxRetries: 8, RetryBackoff: 100 * time.Microsecond, Events: events}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.PlanRetries < 1 {
		t.Errorf("expected plan retries while the SoC was fully offline, got %d", res.PlanRetries)
	}
	if res.EventsApplied != len(events) {
		t.Errorf("EventsApplied = %d, want %d", res.EventsApplied, len(events))
	}
	// Without the retry budget the same scenario must surface the
	// infeasibility as an error.
	pl2, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxRetries = 0
	s2, err := NewScheduler(pl2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(burstRequests(t, model.ResNet50, model.SqueezeNet), pipeline.DefaultOptions()); !errors.Is(err, core.ErrInfeasiblePartition) {
		t.Errorf("zero-retry run error %v does not wrap ErrInfeasiblePartition", err)
	}
}

// TestStreamDegradationDeadlines: a throttle event stretches latencies so a
// tight sojourn budget is missed; the miss is counted, not dropped.
func TestStreamDegradationDeadlines(t *testing.T) {
	base := newScheduler(t, Config{MaxWindow: 4, MaxBatch: 1})
	reqs := burstRequests(t, model.ResNet50, model.GoogLeNet)
	baseRes, err := base.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Deadline halfway below the undegraded sojourn: met only if nothing
	// slows down. Throttle everything 4× from the start.
	var events []soc.Event
	for _, p := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		events = append(events, soc.Event{Kind: soc.EventThermalThrottle, Processor: p, Factor: 4})
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, Config{MaxWindow: 4, MaxBatch: 1, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	degraded := burstRequests(t, model.ResNet50, model.GoogLeNet)
	for i := range degraded {
		degraded[i].Deadline = baseRes.Sojourns[i] * 2
	}
	res, err := s.Run(degraded, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAllComplete(t, degraded, res)
	if res.DeadlineMisses < 1 {
		t.Errorf("expected deadline misses under 4x throttle, got %d", res.DeadlineMisses)
	}
}

// TestStreamDegradationCancel: a cancelled context aborts RunContext with
// an error wrapping context.Canceled before any window completes.
func TestStreamDegradationCancel(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	if _, err := s.RunContext(ctx, reqs, pipeline.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext error %v does not wrap context.Canceled", err)
	}
}
