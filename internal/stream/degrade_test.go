package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func burstRequests(t *testing.T, names ...string) []Request {
	t.Helper()
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Request, len(models))
	for i, m := range models {
		out[i] = Request{Model: m}
	}
	return out
}

func checkAllComplete(t *testing.T, reqs []Request, res *Result) {
	t.Helper()
	for i := range reqs {
		if res.Completions[i] < reqs[i].Arrival || res.Completions[i] <= 0 {
			t.Errorf("request %d completion %v inconsistent with arrival %v",
				i, res.Completions[i], reqs[i].Arrival)
		}
		if res.Completions[i] > res.Makespan {
			t.Errorf("request %d completes at %v after makespan %v",
				i, res.Completions[i], res.Makespan)
		}
	}
}

// TestStreamDegradationOfflineReplan is the acceptance scenario: the NPU
// goes offline strictly inside the first window's execution. The window
// must be interrupted and replanned onto the surviving processors, every
// request must still complete, and the result must report the replan.
func TestStreamDegradationOfflineReplan(t *testing.T) {
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	// Baseline run (no events) to learn the first window's makespan.
	base := newScheduler(t, DefaultConfig())
	baseRes, err := base.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if baseRes.Replans != 0 || baseRes.EventsApplied != 0 {
		t.Fatalf("baseline reports degradation activity: %+v", baseRes)
	}

	cfg := DefaultConfig()
	cfg.Events = []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: baseRes.WindowStats[0].End / 3},
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := burstRequests(t, names...)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.Replans < 1 {
		t.Errorf("expected at least one replan, got %d", res.Replans)
	}
	if res.Retried < 1 {
		t.Errorf("expected requeued requests, got Retried=%d", res.Retried)
	}
	if res.EventsApplied != 1 {
		t.Errorf("EventsApplied = %d, want 1", res.EventsApplied)
	}
	interrupted := 0
	for _, ws := range res.WindowStats {
		if ws.Interrupted {
			interrupted++
			if ws.Requeued < 1 {
				t.Error("interrupted window requeued nothing")
			}
			if ws.End != cfg.Events[0].At {
				t.Errorf("interrupted window ends at %v, want event time %v", ws.End, cfg.Events[0].At)
			}
		}
	}
	if interrupted != res.Replans {
		t.Errorf("interrupted windows %d != Replans %d", interrupted, res.Replans)
	}
	if !pl.SoC().Processors[0].Degrade.Offline {
		t.Error("npu not marked offline after the run")
	}
	// The degraded tail must be slower than the full-SoC baseline.
	if res.Makespan <= baseRes.Makespan {
		t.Errorf("degraded makespan %v not above baseline %v", res.Makespan, baseRes.Makespan)
	}
}

// TestStreamDegradationPartialInvalidation: a throttle on one processor
// between two identical bursts must re-measure only that processor's cost
// tables — every lookup in the second burst still reports a cache hit for
// the untouched tables.
func TestStreamDegradationPartialInvalidation(t *testing.T) {
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet}
	cfg := Config{MaxWindow: 8, MaxBatch: 1}
	warm, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != uint64(len(names)) {
		t.Fatalf("cold run misses = %d, want %d", res.CacheMisses, len(names))
	}

	cfg.Events = []soc.Event{{Kind: soc.EventThermalThrottle, Processor: "gpu", Factor: 2}}
	hot, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = hot.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Each model re-measures the throttled gpu table (a miss) while reusing
	// the other processors' tables (a hit on the same lookup).
	if res.CacheMisses != uint64(len(names)) {
		t.Errorf("post-throttle misses = %d, want %d (gpu tables only)", res.CacheMisses, len(names))
	}
	if res.CacheHits != uint64(len(names)) {
		t.Errorf("post-throttle hits = %d, want %d (unaffected tables reused)", res.CacheHits, len(names))
	}

	// A third identical burst is fully warm again.
	cold, err := NewScheduler(pl, Config{MaxWindow: 8, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err = cold.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 || res.CacheHits != uint64(len(names)) {
		t.Errorf("re-warmed run hits=%d misses=%d, want %d/0", res.CacheHits, res.CacheMisses, len(names))
	}
}

// TestStreamDegradationRetryBackoff: every processor goes offline before
// the burst, and comes back a few milliseconds later. Planning must fail,
// back off on the virtual clock until the recovery events come due, then
// complete the whole stream.
func TestStreamDegradationRetryBackoff(t *testing.T) {
	procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
	var events []soc.Event
	for _, p := range procs {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: 100 * time.Microsecond})
		events = append(events, soc.Event{Kind: soc.EventProcessorOnline, Processor: p, At: 5 * time.Millisecond})
	}
	cfg := Config{MaxWindow: 8, MaxBatch: 1, MaxRetries: 8, RetryBackoff: 100 * time.Microsecond, Events: events}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.PlanRetries < 1 {
		t.Errorf("expected plan retries while the SoC was fully offline, got %d", res.PlanRetries)
	}
	if res.EventsApplied != len(events) {
		t.Errorf("EventsApplied = %d, want %d", res.EventsApplied, len(events))
	}
	// Without the retry budget the same scenario must surface the
	// infeasibility as an error.
	pl2, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxRetries = 0
	s2, err := NewScheduler(pl2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(burstRequests(t, model.ResNet50, model.SqueezeNet), pipeline.DefaultOptions()); !errors.Is(err, core.ErrInfeasiblePartition) {
		t.Errorf("zero-retry run error %v does not wrap ErrInfeasiblePartition", err)
	}
}

// TestStreamDegradationDeadlines: a throttle event stretches latencies so a
// tight sojourn budget is missed; the miss is counted, not dropped.
func TestStreamDegradationDeadlines(t *testing.T) {
	base := newScheduler(t, Config{MaxWindow: 4, MaxBatch: 1})
	reqs := burstRequests(t, model.ResNet50, model.GoogLeNet)
	baseRes, err := base.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Deadline halfway below the undegraded sojourn: met only if nothing
	// slows down. Throttle everything 4× from the start.
	var events []soc.Event
	for _, p := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		events = append(events, soc.Event{Kind: soc.EventThermalThrottle, Processor: p, Factor: 4})
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, Config{MaxWindow: 4, MaxBatch: 1, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	degraded := burstRequests(t, model.ResNet50, model.GoogLeNet)
	for i := range degraded {
		degraded[i].Deadline = baseRes.Sojourns[i] * 2
	}
	res, err := s.Run(degraded, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAllComplete(t, degraded, res)
	if res.DeadlineMisses < 1 {
		t.Errorf("expected deadline misses under 4x throttle, got %d", res.DeadlineMisses)
	}
}

// TestStreamDegradationCancel: a cancelled context aborts RunContext with
// an error wrapping context.Canceled before any window completes.
func TestStreamDegradationCancel(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	if _, err := s.RunContext(ctx, reqs, pipeline.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext error %v does not wrap context.Canceled", err)
	}
}

// TestStreamDegradationRetryBackoffSaturates pins the saturation semantics
// of the per-attempt backoff: positive, monotone non-decreasing and capped
// at max(base, 1s) for every attempt, including the ≥ 40 range where the
// pre-fix expression (base << attempt) overflowed time.Duration, went
// negative and moved the virtual clock backwards.
func TestStreamDegradationRetryBackoffSaturates(t *testing.T) {
	base := 500 * time.Microsecond
	prev := time.Duration(0)
	for attempt := 0; attempt <= 200; attempt++ {
		b := retryBackoff(base, attempt)
		if b <= 0 {
			t.Fatalf("attempt %d: backoff %v not positive", attempt, b)
		}
		if b < prev {
			t.Fatalf("attempt %d: backoff %v below previous %v", attempt, b, prev)
		}
		if b > time.Second {
			t.Fatalf("attempt %d: backoff %v above the 1s ceiling", attempt, b)
		}
		prev = b
	}
	if got := retryBackoff(base, 0); got != base {
		t.Errorf("attempt 0 backoff = %v, want base %v", got, base)
	}
	// A base above the default ceiling keeps its own value as the ceiling.
	if got := retryBackoff(3*time.Second, 50); got != 3*time.Second {
		t.Errorf("large-base backoff = %v, want 3s", got)
	}
}

// TestStreamDegradationBackoffOverflowRecovery is the MaxRetries ≥ 40
// regression scenario: every processor goes offline before the burst and
// recovers 40 virtual seconds later. With saturating backoff the scheduler
// needs ~50 one-second-capped retries to reach the recovery and completes
// just past it. The pre-fix doubling backoff raced exponentially past the
// recovery instant (clock ≈ 65.5s after 17 attempts), so both assertions
// below fail on the pre-fix code.
func TestStreamDegradationBackoffOverflowRecovery(t *testing.T) {
	procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
	var events []soc.Event
	for _, p := range procs {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: 0})
		events = append(events, soc.Event{Kind: soc.EventProcessorOnline, Processor: p, At: 40 * time.Second})
	}
	cfg := Config{MaxWindow: 4, MaxBatch: 1, MaxRetries: 64, RetryBackoff: 500 * time.Microsecond, Events: events}
	s := newScheduler(t, cfg)
	reqs := burstRequests(t, model.ResNet50)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.PlanRetries < 40 {
		t.Errorf("PlanRetries = %d, want ≥ 40 (saturated 1s pauses to cover 40s)", res.PlanRetries)
	}
	if res.Makespan < 40*time.Second || res.Makespan > 45*time.Second {
		t.Errorf("Makespan = %v, want just past the 40s recovery (pre-fix backoff overshot to ~65s)", res.Makespan)
	}
}

// TestStreamDegradationBackoffAdmission is the regression test for window
// admission during plan-retry backoff: request B arrives while the
// scheduler is backing off an infeasible window, and the replanned window
// must include it. Pre-fix the window membership was frozen before the
// retry loop, so B was pushed into a second window (Windows == 2,
// WindowStats[0].Requests == 1).
func TestStreamDegradationBackoffAdmission(t *testing.T) {
	procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
	var events []soc.Event
	for _, p := range procs {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: 0})
		events = append(events, soc.Event{Kind: soc.EventProcessorOnline, Processor: p, At: 5 * time.Millisecond})
	}
	cfg := Config{MaxWindow: 4, MaxBatch: 1, MaxRetries: 8, RetryBackoff: 500 * time.Microsecond, Events: events}
	s := newScheduler(t, cfg)
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	reqs[1].Arrival = time.Millisecond // lands mid-backoff, before recovery
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("run did not recover: %v", err)
	}
	checkAllComplete(t, reqs, res)
	if res.PlanRetries < 1 {
		t.Fatalf("scenario broken: no plan retries, B never arrived mid-backoff")
	}
	if res.Windows != 1 {
		t.Errorf("Windows = %d, want 1 (replanned window admits the mid-backoff arrival)", res.Windows)
	}
	if got := res.WindowStats[0].Requests; got != 2 {
		t.Errorf("WindowStats[0].Requests = %d, want 2", got)
	}
}

// TestStreamDegradationMakespanLastCompletion pins Makespan = max
// completion on a run whose final window plan-retried after the previous
// window's last completion: the backoff legitimately advances the virtual
// clock past every completion, and none of that scheduler-side time may
// leak into Makespan. (An earlier version folded the loop-exit clock into
// Makespan as a final `if now > Makespan` step; the completion-recording
// path already establishes the invariant, and this test keeps it pinned.)
func TestStreamDegradationMakespanLastCompletion(t *testing.T) {
	// Window 1: A alone (MaxWindow 1). After its completion every processor
	// drops offline, so B's window plan-retries across backoff until the
	// recovery comes due.
	base := newScheduler(t, Config{MaxWindow: 1, MaxBatch: 1})
	probe := burstRequests(t, model.ResNet50)
	baseRes, err := base.Run(probe, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tA := baseRes.Completions[0]

	procs := []string{"npu", "cpu-big", "gpu", "cpu-small"}
	var events []soc.Event
	for _, p := range procs {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: tA + time.Microsecond})
		events = append(events, soc.Event{Kind: soc.EventProcessorOnline, Processor: p, At: tA + 20*time.Millisecond})
	}
	cfg := Config{MaxWindow: 1, MaxBatch: 1, MaxRetries: 16, RetryBackoff: 500 * time.Microsecond, Events: events}
	s := newScheduler(t, cfg)
	reqs := burstRequests(t, model.ResNet50, model.SqueezeNet)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAllComplete(t, reqs, res)
	if res.PlanRetries < 1 {
		t.Fatalf("scenario broken: final window never plan-retried")
	}
	last := res.Completions[0]
	for _, c := range res.Completions {
		if c > last {
			last = c
		}
	}
	if res.Makespan != last {
		t.Errorf("Makespan = %v, want last completion %v (no backoff/idle time folded in)", res.Makespan, last)
	}
}

// TestStreamDegradationBatchedDeadlines covers deadline-miss accounting
// under Appendix-D batching: coalesced same-model requests share one
// completion time but hold their own deadlines, so one shared completion
// must be judged once per member against that member's budget.
func TestStreamDegradationBatchedDeadlines(t *testing.T) {
	names := []string{
		model.ResNet50,
		model.SqueezeNet, model.SqueezeNet, model.SqueezeNet,
		model.SqueezeNet, model.SqueezeNet, model.SqueezeNet,
	}
	reqs := burstRequests(t, names...)
	// ResNet and three of the SqueezeNets get generous budgets; the other
	// three get impossible ones. All seven arrive together.
	reqs[0].Deadline = time.Hour
	for i := 1; i <= 3; i++ {
		reqs[i].Deadline = time.Nanosecond
	}
	for i := 4; i <= 6; i++ {
		reqs[i].Deadline = time.Hour
	}
	s := newScheduler(t, Config{MaxWindow: 8, MaxBatch: 32})
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAllComplete(t, reqs, res)
	// The light SqueezeNets must actually have been batched: one shared
	// completion time across all six.
	for i := 2; i <= 6; i++ {
		if res.Completions[i] != res.Completions[1] {
			t.Fatalf("SqueezeNet completions differ (%v vs %v): batching did not group them",
				res.Completions[i], res.Completions[1])
		}
	}
	if res.DeadlineMisses != 3 {
		t.Errorf("DeadlineMisses = %d, want 3 (per-member budgets on a shared completion)", res.DeadlineMisses)
	}
}
