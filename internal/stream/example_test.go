package stream_test

import (
	"fmt"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// ExampleScheduler runs a tiny online stream: two requests arriving apart,
// each planned in its own window.
func ExampleScheduler() {
	planner, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	sched, err := stream.NewScheduler(planner, stream.DefaultConfig())
	if err != nil {
		panic(err)
	}
	requests := []stream.Request{
		{Model: model.MustByName(model.SqueezeNet), Arrival: 0},
		{Model: model.MustByName(model.MobileNetV2), Arrival: time.Second},
	}
	res, err := sched.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("windows:", res.Windows)
	fmt.Println("all completed:", len(res.Completions))
	// Output:
	// windows: 2
	// all completed: 2
}
