package stream

import (
	"sync"
	"sync/atomic"

	"hetero2pipe/internal/obs"
)

// Feed is the scheduler's live window outlet: a bounded ring of completed
// WindowStats plus fan-out subscriptions, read by the observability server
// while a run is in flight (/windows and its SSE variant). One Feed may be
// shared by consecutive runs; Ready reports whether any run is currently
// accepting admissions — the /readyz signal.
//
// Every method is nil-receiver-safe, so the scheduler publishes
// unconditionally and pays two atomic loads when no feed is attached.
type Feed struct {
	mu     sync.Mutex
	ring   []WindowStat
	total  int
	subs   map[int]*feedSub
	nextID int
	// active counts runs currently inside RunContext (admissions open).
	active atomic.Int32
	// drops counts events dropped across every subscriber (full buffers);
	// dropCounter mirrors them onto stream_feed_drops_total when a run
	// binds its registry.
	drops       atomic.Uint64
	dropCounter atomic.Pointer[obs.Counter]
}

// feedSub is one live subscription: its channel and how many events
// overflowed its buffer and were dropped.
type feedSub struct {
	ch    chan WindowStat
	drops atomic.Uint64
}

// DefaultFeedCapacity is the ring size NewFeed applies to non-positive
// capacities.
const DefaultFeedCapacity = 256

// NewFeed returns a feed whose ring retains the last capacity windows
// (capacity ≤ 0 selects DefaultFeedCapacity).
func NewFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feed{ring: make([]WindowStat, 0, capacity), subs: make(map[int]*feedSub)}
}

// start marks a run as accepting admissions.
func (f *Feed) start() {
	if f == nil {
		return
	}
	f.active.Add(1)
}

// stop marks the run as finished.
func (f *Feed) stop() {
	if f == nil {
		return
	}
	f.active.Add(-1)
}

// bindDrops points the feed's drop mirror at a registry counter
// (stream_feed_drops_total). Called by the scheduler at run start; the last
// bound counter wins when runs share a feed.
func (f *Feed) bindDrops(c *obs.Counter) {
	if f == nil {
		return
	}
	f.dropCounter.Store(c)
}

// Ready reports whether a stream run is currently accepting admissions.
func (f *Feed) Ready() bool {
	return f != nil && f.active.Load() > 0
}

// publish appends one completed window to the ring and fans it out to the
// subscribers. Slow subscribers never block the scheduler: a full channel
// drops the event — counted per subscriber and on the feed-wide total
// (Drops, stream_feed_drops_total) so SSE consumers can detect the gap; the
// ring keeps the authoritative history.
func (f *Feed) publish(ws WindowStat) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ws)
	} else {
		copy(f.ring, f.ring[1:])
		f.ring[len(f.ring)-1] = ws
	}
	f.total++
	for _, sub := range f.subs {
		select {
		case sub.ch <- ws:
		default:
			sub.drops.Add(1)
			f.drops.Add(1)
			if c := f.dropCounter.Load(); c != nil {
				c.Inc()
			}
		}
	}
	f.mu.Unlock()
}

// Total reports how many windows have been published over the feed's
// lifetime, including any the ring has since evicted.
func (f *Feed) Total() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Drops reports how many events have been dropped on full subscriber
// buffers across the feed's lifetime, summed over all subscribers.
func (f *Feed) Drops() uint64 {
	if f == nil {
		return 0
	}
	return f.drops.Load()
}

// Live snapshots the retained windows, oldest first.
func (f *Feed) Live() []WindowStat {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]WindowStat(nil), f.ring...)
}

// Subscribe registers a live subscription: every window published after the
// call is sent to the returned channel (buffered; events overflowing the
// buffer are dropped rather than blocking the scheduler). The cancel
// function unregisters and closes the channel.
func (f *Feed) Subscribe(buffer int) (<-chan WindowStat, func()) {
	ch, _, cancel := f.SubscribeWithDrops(buffer)
	return ch, cancel
}

// SubscribeWithDrops is Subscribe plus a drop probe: the second return reads
// how many events have overflowed this subscriber's buffer so far, letting a
// consumer detect gaps in its stream (the feed-wide ring keeps the history).
func (f *Feed) SubscribeWithDrops(buffer int) (<-chan WindowStat, func() uint64, func()) {
	if f == nil {
		ch := make(chan WindowStat)
		close(ch)
		return ch, func() uint64 { return 0 }, func() {}
	}
	if buffer < 1 {
		buffer = 16
	}
	sub := &feedSub{ch: make(chan WindowStat, buffer)}
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.subs[id] = sub
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		if _, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(sub.ch)
		}
		f.mu.Unlock()
	}
	return sub.ch, sub.drops.Load, cancel
}
