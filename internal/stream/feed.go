package stream

import (
	"sync"
	"sync/atomic"
)

// Feed is the scheduler's live window outlet: a bounded ring of completed
// WindowStats plus fan-out subscriptions, read by the observability server
// while a run is in flight (/windows and its SSE variant). One Feed may be
// shared by consecutive runs; Ready reports whether any run is currently
// accepting admissions — the /readyz signal.
//
// Every method is nil-receiver-safe, so the scheduler publishes
// unconditionally and pays two atomic loads when no feed is attached.
type Feed struct {
	mu     sync.Mutex
	ring   []WindowStat
	total  int
	subs   map[int]chan WindowStat
	nextID int
	// active counts runs currently inside RunContext (admissions open).
	active atomic.Int32
}

// DefaultFeedCapacity is the ring size NewFeed applies to non-positive
// capacities.
const DefaultFeedCapacity = 256

// NewFeed returns a feed whose ring retains the last capacity windows
// (capacity ≤ 0 selects DefaultFeedCapacity).
func NewFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feed{ring: make([]WindowStat, 0, capacity), subs: make(map[int]chan WindowStat)}
}

// start marks a run as accepting admissions.
func (f *Feed) start() {
	if f == nil {
		return
	}
	f.active.Add(1)
}

// stop marks the run as finished.
func (f *Feed) stop() {
	if f == nil {
		return
	}
	f.active.Add(-1)
}

// Ready reports whether a stream run is currently accepting admissions.
func (f *Feed) Ready() bool {
	return f != nil && f.active.Load() > 0
}

// publish appends one completed window to the ring and fans it out to the
// subscribers. Slow subscribers never block the scheduler: a full channel
// drops the event (the ring keeps the authoritative history).
func (f *Feed) publish(ws WindowStat) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ws)
	} else {
		copy(f.ring, f.ring[1:])
		f.ring[len(f.ring)-1] = ws
	}
	f.total++
	for _, ch := range f.subs {
		select {
		case ch <- ws:
		default:
		}
	}
	f.mu.Unlock()
}

// Total reports how many windows have been published over the feed's
// lifetime, including any the ring has since evicted.
func (f *Feed) Total() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Live snapshots the retained windows, oldest first.
func (f *Feed) Live() []WindowStat {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]WindowStat(nil), f.ring...)
}

// Subscribe registers a live subscription: every window published after the
// call is sent to the returned channel (buffered; events overflowing the
// buffer are dropped rather than blocking the scheduler). The cancel
// function unregisters and closes the channel.
func (f *Feed) Subscribe(buffer int) (<-chan WindowStat, func()) {
	if f == nil {
		ch := make(chan WindowStat)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan WindowStat, buffer)
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.subs[id] = ch
	f.mu.Unlock()
	cancel := func() {
		f.mu.Lock()
		if _, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(ch)
		}
		f.mu.Unlock()
	}
	return ch, cancel
}
