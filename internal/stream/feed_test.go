package stream

import (
	"sync"
	"testing"
	"time"
)

func feedWindow(idx int) WindowStat {
	return WindowStat{Requests: idx, Start: time.Duration(idx) * time.Millisecond}
}

func TestFeedNilSafety(t *testing.T) {
	var f *Feed
	f.start()
	f.stop()
	f.publish(feedWindow(0))
	if f.Ready() {
		t.Error("nil feed reports ready")
	}
	if f.Total() != 0 {
		t.Error("nil feed reports published windows")
	}
	if f.Live() != nil {
		t.Error("nil feed returns a live snapshot")
	}
	ch, cancel := f.Subscribe(4)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil feed subscription channel is not closed")
	}
}

func TestFeedRingEviction(t *testing.T) {
	const capacity = 4
	f := NewFeed(capacity)
	for i := 0; i < 10; i++ {
		f.publish(feedWindow(i))
	}
	if got := f.Total(); got != 10 {
		t.Errorf("Total %d, want 10", got)
	}
	live := f.Live()
	if len(live) != capacity {
		t.Fatalf("Live holds %d windows, want the ring capacity %d", len(live), capacity)
	}
	for i, ws := range live {
		if want := 10 - capacity + i; ws.Requests != want {
			t.Errorf("slot %d holds window %d, want %d (oldest first)", i, ws.Requests, want)
		}
	}
}

func TestFeedDefaultCapacity(t *testing.T) {
	f := NewFeed(0)
	if got := cap(f.ring); got != DefaultFeedCapacity {
		t.Errorf("NewFeed(0) ring capacity %d, want %d", got, DefaultFeedCapacity)
	}
}

func TestFeedReadyTracksRuns(t *testing.T) {
	f := NewFeed(0)
	if f.Ready() {
		t.Error("fresh feed reports ready")
	}
	f.start()
	if !f.Ready() {
		t.Error("feed not ready after start")
	}
	f.start() // overlapping second run
	f.stop()
	if !f.Ready() {
		t.Error("feed lost readiness while one run is still active")
	}
	f.stop()
	if f.Ready() {
		t.Error("feed still ready after every run stopped")
	}
}

func TestFeedSubscribeAndCancel(t *testing.T) {
	f := NewFeed(0)
	ch, cancel := f.Subscribe(4)
	f.publish(feedWindow(1))
	select {
	case ws := <-ch:
		if ws.Requests != 1 {
			t.Errorf("subscriber got window %d, want 1", ws.Requests)
		}
	default:
		t.Fatal("published window never reached the subscriber")
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	// Publishing after cancel must not panic on the closed channel.
	f.publish(feedWindow(2))
}

func TestFeedSlowSubscriberDrops(t *testing.T) {
	f := NewFeed(0)
	ch, cancel := f.Subscribe(1)
	defer cancel()
	f.publish(feedWindow(0))
	f.publish(feedWindow(1)) // buffer full: dropped, must not block
	if got := f.Total(); got != 2 {
		t.Errorf("Total %d, want 2 — drops affect subscribers only", got)
	}
	if ws := <-ch; ws.Requests != 0 {
		t.Errorf("subscriber got window %d, want the first (0)", ws.Requests)
	}
	select {
	case ws := <-ch:
		t.Errorf("overflowed window %d was delivered, want dropped", ws.Requests)
	default:
	}
}

func TestFeedConcurrentPublishSubscribe(t *testing.T) {
	f := NewFeed(8)
	const publishers, each = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churning subscribers while publishers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch, cancel := f.Subscribe(2)
			select {
			case <-ch:
			default:
			}
			cancel()
		}
	}()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.publish(feedWindow(p*each + i))
				f.Live()
			}
		}(p)
	}
	// Wait for publishers (the subscriber goroutine exits via stop).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for f.Total() < publishers*each {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := f.Total(); got != publishers*each {
		t.Errorf("Total %d, want %d", got, publishers*each)
	}
	if got := len(f.Live()); got != 8 {
		t.Errorf("Live holds %d windows, want the ring capacity 8", got)
	}
}
