package stream

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/workload"
)

// zeroArrivals builds requests that all arrive at time zero, so MaxWindow
// alone decides the window split.
func zeroArrivals(t *testing.T, names ...string) []Request {
	t.Helper()
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(models))
	for i, m := range models {
		reqs[i] = Request{Model: m}
	}
	return reqs
}

// TestStreamFrontierWindowStats: a frontier-mode run resolves an SLO class
// per window, records the frontier size, fills the executed objective vector
// and surfaces all three in the run report.
func TestStreamFrontierWindowStats(t *testing.T) {
	reg := obs.NewRegistry("test")
	cfg := DefaultConfig()
	cfg.Objective = core.ObjectiveFrontier
	cfg.Metrics = reg
	s := newScheduler(t, cfg)
	reqs := streamOf(t, 15*time.Millisecond,
		model.ResNet50, model.SqueezeNet, model.MobileNetV2, model.BERT)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.WindowStats) == 0 {
		t.Fatal("no window stats")
	}
	var chosen uint64
	for i, ws := range res.WindowStats {
		if ws.FrontierSize < 1 {
			t.Errorf("window %d: frontier size %d, want ≥ 1", i, ws.FrontierSize)
		}
		if ws.SLO.Kind != core.SLOLatencyCriticalKind {
			t.Errorf("window %d: SLO %v, want latency-critical default", i, ws.SLO)
		}
		if ws.Objective.Makespan <= 0 {
			t.Errorf("window %d: objective makespan %v not populated", i, ws.Objective.Makespan)
		}
		if ws.Objective.EnergyJoules <= 0 {
			t.Errorf("window %d: objective energy %v not populated", i, ws.Objective.EnergyJoules)
		}
	}
	chosen = reg.WithLabels("slo", core.SLOLatencyCritical.String()).
		Counter("stream_objective_choice_total").Value()
	if chosen != uint64(len(res.WindowStats)) {
		t.Errorf("objective-choice counter = %d, want %d (one per window)", chosen, len(res.WindowStats))
	}
	for i, wr := range res.Report.Windows {
		if wr.SLO != core.SLOLatencyCritical.String() {
			t.Errorf("report window %d: slo %q", i, wr.SLO)
		}
		if wr.FrontierSize < 1 {
			t.Errorf("report window %d: frontier_size %d", i, wr.FrontierSize)
		}
		if wr.EnergyJoules <= 0 {
			t.Errorf("report window %d: energy %v", i, wr.EnergyJoules)
		}
	}
}

// TestStreamFrontierMakespanModeUnchanged: without frontier mode the new
// fields stay zero-valued while the executed objective is still recorded.
func TestStreamFrontierMakespanModeUnchanged(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	res, err := s.Run(zeroArrivals(t, model.ResNet50, model.SqueezeNet), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, ws := range res.WindowStats {
		if ws.FrontierSize != 0 {
			t.Errorf("window %d: frontier size %d in makespan mode", i, ws.FrontierSize)
		}
		if ws.SLO.Kind != core.SLOUnset {
			t.Errorf("window %d: SLO %v in makespan mode", i, ws.SLO)
		}
		if ws.Objective.Makespan <= 0 {
			t.Errorf("window %d: executed objective not recorded", i)
		}
	}
}

// TestStreamFrontierStrictestClass: a window holding mixed per-request SLO
// classes resolves to the strictest member class, not the config default.
func TestStreamFrontierStrictestClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Objective = core.ObjectiveFrontier
	cfg.SLO = core.SLOBatterySaver // config default, overridden by members
	s := newScheduler(t, cfg)
	reqs := zeroArrivals(t, model.ResNet50, model.SqueezeNet, model.MobileNetV2)
	reqs[0].SLO = core.SLOBatterySaver
	reqs[1].SLO = core.SLOLatencyCritical
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 1 {
		t.Fatalf("windows = %d, want 1", res.Windows)
	}
	if got := res.WindowStats[0].SLO; got.Kind != core.SLOLatencyCriticalKind {
		t.Errorf("window SLO = %v, want latency-critical (strictest member)", got)
	}

	// Without member classes the config default governs.
	s2 := newScheduler(t, cfg)
	res2, err := s2.Run(zeroArrivals(t, model.ResNet50, model.SqueezeNet), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.WindowStats[0].SLO; got.Kind != core.SLOBatterySaverKind {
		t.Errorf("window SLO = %v, want battery-saver config default", got)
	}
}

// TestStreamFrontierBatterySaverEnergy: on the same single-window workload, a
// battery-saver run must not burn more energy than a latency-critical run,
// and latency-critical must not be slower than battery-saver.
func TestStreamFrontierBatterySaverEnergy(t *testing.T) {
	runWith := func(slo core.SLOClass) WindowStat {
		cfg := DefaultConfig()
		cfg.Objective = core.ObjectiveFrontier
		cfg.SLO = slo
		s := newScheduler(t, cfg)
		res, err := s.Run(zeroArrivals(t,
			model.YOLOv4, model.SqueezeNet, model.BERT, model.ResNet50), pipeline.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Windows != 1 {
			t.Fatalf("windows = %d, want 1", res.Windows)
		}
		return res.WindowStats[0]
	}
	saver := runWith(core.SLOBatterySaver)
	crit := runWith(core.SLOLatencyCritical)
	if saver.Objective.EnergyJoules > crit.Objective.EnergyJoules {
		t.Errorf("battery-saver window used %.4f J > latency-critical %.4f J",
			saver.Objective.EnergyJoules, crit.Objective.EnergyJoules)
	}
	if crit.Objective.Makespan > saver.Objective.Makespan {
		t.Errorf("latency-critical window took %v > battery-saver %v",
			crit.Objective.Makespan, saver.Objective.Makespan)
	}
}
