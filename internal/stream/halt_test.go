package stream

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// kirinOffline returns events taking every Kirin 990 processor offline at
// the given virtual instant.
func kirinOffline(at time.Duration) []soc.Event {
	events := make([]soc.Event, 0, 4)
	for _, p := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: at})
	}
	return events
}

// haltConfig is a fast-failing scheduler configuration with the graceful
// halt switch in the given position.
func haltConfig(halt bool, events []soc.Event) Config {
	return Config{
		MaxWindow:      3,
		MaxBatch:       1,
		MaxRetries:     2,
		RetryBackoff:   100 * time.Microsecond,
		Events:         events,
		HaltInfeasible: halt,
	}
}

// spreadRequests builds requests over names with a fixed arrival gap so some
// arrive only after the halt instant.
func spreadRequests(t *testing.T, names []string, gap time.Duration) []Request {
	t.Helper()
	reqs := make([]Request, len(names))
	for i, n := range names {
		reqs[i] = Request{Model: model.MustByName(n), Arrival: time.Duration(i) * gap}
	}
	return reqs
}

// TestStreamHaltInfeasible: with every processor offline past the plan-retry
// budget, Config.HaltInfeasible must convert the hard error into a partial
// Result that accounts for every request exactly once — completed before the
// halt or listed in Unfinished — while the same run without the switch still
// fails loudly.
func TestStreamHaltInfeasible(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2,
		model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2,
	}
	events := kirinOffline(2 * time.Millisecond)

	// Without the switch: a hard error (the pre-existing contract).
	hard := newPlanCacheScheduler(t, haltConfig(false, events), 0)
	if _, err := hard.Run(spreadRequests(t, names, time.Millisecond), pipeline.DefaultOptions()); err == nil {
		t.Fatal("run with every processor offline returned nil error without HaltInfeasible")
	}

	soft := newPlanCacheScheduler(t, haltConfig(true, events), 0)
	res, err := soft.Run(spreadRequests(t, names, time.Millisecond), pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("HaltInfeasible run: %v", err)
	}
	if !res.Halted {
		t.Fatal("result not marked Halted")
	}
	if res.HaltedAt <= 0 {
		t.Errorf("HaltedAt = %v, want > 0", res.HaltedAt)
	}
	if len(res.Unfinished) == 0 {
		t.Fatal("halted run reports no unfinished requests")
	}
	unfin := make(map[int]bool, len(res.Unfinished))
	for _, i := range res.Unfinished {
		if i < 0 || i >= len(names) {
			t.Fatalf("unfinished index %d out of range", i)
		}
		if unfin[i] {
			t.Fatalf("unfinished index %d listed twice", i)
		}
		unfin[i] = true
	}
	completed := 0
	for i := range names {
		if unfin[i] {
			if res.Completions[i] != 0 || res.Sojourns[i] != 0 {
				t.Errorf("unfinished request %d has completion %v / sojourn %v",
					i, res.Completions[i], res.Sojourns[i])
			}
			continue
		}
		completed++
		if res.Completions[i] <= 0 {
			t.Errorf("request %d neither completed nor listed unfinished", i)
		}
	}
	if completed+len(res.Unfinished) != len(names) {
		t.Errorf("accounting: %d completed + %d unfinished != %d requests",
			completed, len(res.Unfinished), len(names))
	}
	if res.PlanRetries == 0 {
		t.Error("halted run consumed no plan retries")
	}
	// Every recorded window either completed work or was an interrupted
	// window whose requests were requeued; the aborted final window (planning
	// exhausted) must not be appended at all.
	for i, ws := range res.WindowStats {
		if ws.Completed == 0 && !ws.Interrupted {
			t.Errorf("window %d recorded with zero completions and no interrupt — aborted window leaked into WindowStats", i)
		}
	}

	rep := res.Report
	if rep == nil {
		t.Fatal("halted run has no report")
	}
	if !rep.Stream.Halted {
		t.Error("report not marked halted")
	}
	if rep.Stream.Unfinished != len(res.Unfinished) {
		t.Errorf("report unfinished = %d, want %d", rep.Stream.Unfinished, len(res.Unfinished))
	}
	if rep.Completed != completed {
		t.Errorf("report completed = %d, want %d", rep.Completed, completed)
	}
}

// TestStreamHandoffAccounting: completed requests carrying Request.Handoff
// must be counted per window, on the Result, in the report and on the
// stream_handoffs_total counter — and nowhere else.
func TestStreamHandoffAccounting(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	cfg := haltConfig(false, nil)
	cfg.Metrics = reg
	opts := core.DefaultOptions()
	pl, err := core.NewPlanner(soc.Kirin990(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		model.ResNet50, model.SqueezeNet, model.GoogLeNet,
		model.MobileNetV2, model.ResNet50, model.SqueezeNet,
	}
	reqs := spreadRequests(t, names, 500*time.Microsecond)
	want := 0
	for i := range reqs {
		if i%2 == 1 {
			reqs[i].Handoff = true
			want++
		}
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkAllComplete(t, reqs, res)
	if res.Handoffs != want {
		t.Errorf("result handoffs = %d, want %d", res.Handoffs, want)
	}
	sum := 0
	for _, ws := range res.WindowStats {
		sum += ws.Handoffs
	}
	if sum != want {
		t.Errorf("window handoffs sum to %d, want %d", sum, want)
	}
	if res.Report.Stream.Handoffs != want {
		t.Errorf("report handoffs = %d, want %d", res.Report.Stream.Handoffs, want)
	}
	if got := reg.Snapshot().Counters["stream_handoffs_total"]; got != uint64(want) {
		t.Errorf("stream_handoffs_total = %d, want %d", got, want)
	}

	// A plain run must not count any.
	pl2, err := core.NewPlanner(soc.Kirin990(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewScheduler(pl2, haltConfig(false, nil))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(spreadRequests(t, names, 500*time.Microsecond), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Handoffs != 0 || res2.Report.Stream.Handoffs != 0 {
		t.Errorf("plain run counted %d handoffs (report %d)", res2.Handoffs, res2.Report.Stream.Handoffs)
	}
}
