package stream

import (
	"testing"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// TestDegradationIncrementalReuse pins the observability plumbing for the
// incremental-replanning tentpole: a warm planner hit by a single-processor
// throttle must reuse memoized partition prefixes on the replan, and that
// reuse must surface on the Result, in the per-window stats, and in the
// structured report.
func TestDegradationIncrementalReuse(t *testing.T) {
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet}

	// Cold run: fills the partition memo; nothing to reuse yet.
	cold, err := NewScheduler(pl, Config{MaxWindow: 8, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cold.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.IncrementalReuse != 0 {
		t.Fatalf("cold run reports %d incremental reuses, want 0", res.IncrementalReuse)
	}

	// Warm run with a pre-burst gpu throttle: the epoch moves, but every
	// model's partition resumes from its memoized prefix instead of
	// replanning from scratch.
	cfg := Config{MaxWindow: 8, MaxBatch: 1}
	cfg.Events = []soc.Event{{Kind: soc.EventThermalThrottle, Processor: "gpu", Factor: 2}}
	warm, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = warm.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.IncrementalReuse == 0 {
		t.Error("post-throttle run reports no incremental reuse")
	}
	var winSum uint64
	for _, ws := range res.WindowStats {
		winSum += ws.IncrementalReuse
	}
	if winSum != res.IncrementalReuse {
		t.Errorf("window-stat reuse sum %d != result total %d", winSum, res.IncrementalReuse)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Result.Report not populated")
	}
	if rep.Planner.IncrementalReuse != res.IncrementalReuse {
		t.Errorf("report planner reuse %d != result %d", rep.Planner.IncrementalReuse, res.IncrementalReuse)
	}
	var repSum uint64
	for _, w := range rep.Windows {
		repSum += w.IncrementalReuse
	}
	if repSum != res.IncrementalReuse {
		t.Errorf("report window reuse sum %d != result %d", repSum, res.IncrementalReuse)
	}
}
