package stream

import (
	"encoding/json"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// degradedScenario returns a config whose run exercises every report
// figure: an NPU-offline event interrupts the first window (replan +
// requeues), and tight deadlines on the burst produce misses.
func degradedScenario(t *testing.T) (Config, []Request) {
	t.Helper()
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	base := newScheduler(t, DefaultConfig())
	baseRes, err := base.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Events = []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: baseRes.WindowStats[0].End / 3},
	}
	reqs := burstRequests(t, names...)
	for i := range reqs {
		reqs[i].Deadline = time.Microsecond // degraded run is sure to miss
	}
	return cfg, reqs
}

// TestObsRunReportMatchesResult is the acceptance-criterion test: the
// structured run report's planner cache hit/miss, window, replan and
// deadline-miss figures must exactly equal the corresponding Result
// fields, and the registry counters must agree with both.
func TestObsRunReportMatchesResult(t *testing.T) {
	cfg, reqs := degradedScenario(t)
	reg := obs.NewRegistry("h2pipe")
	cfg.Metrics = reg
	plOpts := core.DefaultOptions()
	plOpts.Metrics = reg // the facade's WithMetrics wires both layers to one registry
	pl, err := core.NewPlanner(soc.Kirin990(), plOpts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Result.Report not populated")
	}
	if rep.Planner.CacheHits != res.CacheHits || rep.Planner.CacheMisses != res.CacheMisses {
		t.Errorf("report cache %d/%d != result %d/%d",
			rep.Planner.CacheHits, rep.Planner.CacheMisses, res.CacheHits, res.CacheMisses)
	}
	if rep.Stream.Windows != res.Windows {
		t.Errorf("report windows %d != result %d", rep.Stream.Windows, res.Windows)
	}
	if rep.Stream.Replans != res.Replans {
		t.Errorf("report replans %d != result %d", rep.Stream.Replans, res.Replans)
	}
	if rep.Stream.Requeues != res.Retried {
		t.Errorf("report requeues %d != result %d", rep.Stream.Requeues, res.Retried)
	}
	if rep.Stream.DeadlineMisses != res.DeadlineMisses {
		t.Errorf("report deadline misses %d != result %d", rep.Stream.DeadlineMisses, res.DeadlineMisses)
	}
	if rep.Stream.EventsApplied != res.EventsApplied {
		t.Errorf("report events %d != result %d", rep.Stream.EventsApplied, res.EventsApplied)
	}
	if rep.Stream.PlanRetries != res.PlanRetries {
		t.Errorf("report plan retries %d != result %d", rep.Stream.PlanRetries, res.PlanRetries)
	}
	if rep.Requests != len(reqs) || rep.Completed != len(res.Completions) {
		t.Errorf("report requests/completed %d/%d != %d/%d",
			rep.Requests, rep.Completed, len(reqs), len(res.Completions))
	}
	if rep.SoC != "Kirin990" {
		t.Errorf("report SoC = %q", rep.SoC)
	}
	if len(rep.Windows) != res.Windows {
		t.Errorf("report has %d window rows, want %d", len(rep.Windows), res.Windows)
	}
	var cells uint64
	for i, wr := range rep.Windows {
		ws := res.WindowStats[i]
		if wr.Requests != ws.Requests || wr.Completed != ws.Completed ||
			wr.Requeued != ws.Requeued || wr.Interrupted != ws.Interrupted ||
			wr.CacheHits != ws.CacheHits || wr.CacheMisses != ws.CacheMisses ||
			wr.DPCells != ws.DPCells {
			t.Errorf("window row %d diverges from WindowStats: %+v vs %+v", i, wr, ws)
		}
		cells += ws.DPCells
	}
	if rep.Planner.DPCells != cells {
		t.Errorf("report DP cells %d != window sum %d", rep.Planner.DPCells, cells)
	}
	if rep.Planner.DPCells == 0 {
		t.Error("no DP cells counted across a multi-window run")
	}
	if rep.Executor.Slices == 0 {
		t.Error("no executor slices aggregated")
	}
	if rep.MakespanMS <= 0 || rep.MakespanMS != float64(res.Makespan)/1e6 {
		t.Errorf("MakespanMS = %v, want %v", rep.MakespanMS, float64(res.Makespan)/1e6)
	}

	// Registry counters must agree with the Result too.
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"stream_windows_total":         uint64(res.Windows),
		"stream_replans_total":         uint64(res.Replans),
		"stream_requeues_total":        uint64(res.Retried),
		"stream_plan_retries_total":    uint64(res.PlanRetries),
		"stream_deadline_misses_total": uint64(res.DeadlineMisses),
		"stream_events_applied_total":  uint64(res.EventsApplied),
		"planner_cache_hits_total":     res.CacheHits,
		"planner_cache_misses_total":   res.CacheMisses,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("registry %s = %d, want %d", name, got, want)
		}
	}
	// One observation per recorded completion; requeued executions are
	// discarded before recording, so the count is exactly the request count.
	if got := snap.Histograms["stream_sojourn_seconds"].Count; got != uint64(len(reqs)) {
		t.Errorf("sojourn observations = %d, want %d", got, len(reqs))
	}
	if snap.Histograms["stream_window_plan_seconds"].Count != uint64(res.Windows) {
		t.Errorf("plan-latency observations = %d, want %d",
			snap.Histograms["stream_window_plan_seconds"].Count, res.Windows)
	}
	// The report must serialise cleanly.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.RunReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stream.Windows != res.Windows {
		t.Errorf("JSON round-trip windows = %d, want %d", back.Stream.Windows, res.Windows)
	}
}

// TestObsWindowTraces: CollectWindowTraces retains one trace per executed
// window, with the interrupted window carrying its cut point.
func TestObsWindowTraces(t *testing.T) {
	cfg, reqs := degradedScenario(t)
	cfg.CollectWindowTraces = true
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WindowTraces) != res.Windows {
		t.Fatalf("WindowTraces = %d, want one per window (%d)", len(res.WindowTraces), res.Windows)
	}
	interrupted := 0
	for i, wt := range res.WindowTraces {
		if wt.Window != i {
			t.Errorf("trace %d has window index %d", i, wt.Window)
		}
		if wt.Schedule == nil || wt.Exec == nil {
			t.Fatalf("trace %d missing schedule or exec", i)
		}
		ws := res.WindowStats[i]
		if wt.Start != ws.Start {
			t.Errorf("trace %d start %v != window stat start %v", i, wt.Start, ws.Start)
		}
		if wt.Interrupted != ws.Interrupted {
			t.Errorf("trace %d interrupted %v != window stat %v", i, wt.Interrupted, ws.Interrupted)
		}
		if wt.Interrupted {
			interrupted++
			if wt.InterruptAt != ws.End {
				t.Errorf("trace %d interrupt at %v != window end %v", i, wt.InterruptAt, ws.End)
			}
		}
	}
	if interrupted == 0 {
		t.Error("scenario produced no interrupted window trace")
	}
	// Off by default: no traces retained.
	cfg.CollectWindowTraces = false
	pl2, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewScheduler(pl2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(burstRequests(t, model.ResNet50), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.WindowTraces != nil {
		t.Errorf("traces retained without CollectWindowTraces: %d", len(res2.WindowTraces))
	}
}
