package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// newPlanCacheScheduler builds a scheduler over a fresh SoC and planner with
// the whole-plan cache sized to capacity (0 disables it).
func newPlanCacheScheduler(t *testing.T, cfg Config, capacity int) *Scheduler {
	t.Helper()
	opts := core.DefaultOptions()
	opts.PlanCache = capacity
	pl, err := core.NewPlanner(soc.Kirin990(), opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// canonicalRun serialises every virtual-clock observable of a run —
// completions, sojourns, window accounting, planned stage rows and executed
// timelines — while excluding wall-clock fields (PlanWall) and the cache
// counters themselves, which legitimately differ between a cached and an
// uncached run.
func canonicalRun(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%v windows=%d replans=%d retried=%d planretries=%d events=%d deadline=%d\n",
		res.Makespan, res.Windows, res.Replans, res.Retried, res.PlanRetries,
		res.EventsApplied, res.DeadlineMisses)
	fmt.Fprintf(&b, "completions=%v\nsojourns=%v\n", res.Completions, res.Sojourns)
	for i, ws := range res.WindowStats {
		fmt.Fprintf(&b, "w%d start=%v end=%v req=%d done=%d requeued=%d retries=%d events=%d interrupted=%t exec=%v\n",
			i, ws.Start, ws.End, ws.Requests, ws.Completed, ws.Requeued,
			ws.PlanRetries, ws.EventsApplied, ws.Interrupted, ws.ExecSpan)
	}
	for _, tr := range res.WindowTraces {
		fmt.Fprintf(&b, "trace%d start=%v interrupted=%t at=%v exec=%v bubble=%v completions=%v\n",
			tr.Window, tr.Start, tr.Interrupted, tr.InterruptAt,
			tr.Exec.Makespan, tr.Exec.BubbleTime, tr.Exec.Completions)
		for i, row := range tr.Schedule.Stages {
			fmt.Fprintf(&b, "  req%d=%s stages=%v\n", i, tr.Schedule.Profiles[i].Model().Name, row)
		}
	}
	return b.String()
}

// TestDifferentialStreamPlanCache: whole online runs — including randomized
// degradation event streams and a crafted mid-window interrupt — must be
// byte-identical with the plan cache on and off. The cache may only change
// planning wall time, never anything on the virtual clock.
func TestDifferentialStreamPlanCache(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet, model.GoogLeNet,
		model.ResNet50, model.SqueezeNet, model.GoogLeNet,
		model.ResNet50, model.SqueezeNet, model.GoogLeNet,
	}
	baseCfg := Config{MaxWindow: 3, MaxBatch: 1, MaxRetries: 6,
		RetryBackoff: 500 * time.Microsecond, CollectWindowTraces: true}

	// Learn the first window's span so one scenario can interrupt strictly
	// inside it.
	probe := newPlanCacheScheduler(t, baseCfg, 0)
	probeRes, err := probe.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if probeRes.Windows < 3 {
		t.Fatalf("probe windows = %d, want ≥ 3", probeRes.Windows)
	}
	midWindow := probeRes.WindowStats[0].End / 2

	rng := rand.New(rand.NewSource(20260805))
	span := probeRes.Makespan
	randomEvents := func() []soc.Event {
		evs := make([]soc.Event, 2+rng.Intn(3))
		for i := range evs {
			at := time.Duration(rng.Int63n(int64(span)))
			switch rng.Intn(3) {
			case 0:
				evs[i] = soc.Event{Kind: soc.EventThermalThrottle, Processor: "cpu-big",
					At: at, Factor: 1 + 0.5*float64(rng.Intn(3))}
			case 1:
				evs[i] = soc.Event{Kind: soc.EventFrequencyScale, Processor: "gpu",
					At: at, Factor: 0.5 + 0.25*float64(rng.Intn(3))}
			case 2:
				evs[i] = soc.Event{Kind: soc.EventBandwidthSqueeze,
					At: at, Factor: 0.6 + 0.2*float64(rng.Intn(3))}
			}
		}
		return evs
	}

	scenarios := []struct {
		name   string
		events []soc.Event
	}{
		{"steady-state", nil},
		{"mid-window-offline", []soc.Event{
			{Kind: soc.EventProcessorOffline, Processor: "npu", At: midWindow},
			{Kind: soc.EventProcessorOnline, Processor: "npu", At: span},
		}},
		{"random-1", randomEvents()},
		{"random-2", randomEvents()},
		{"random-3", randomEvents()},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := baseCfg
			cfg.Events = sc.events
			run := func(capacity int) *Result {
				s := newPlanCacheScheduler(t, cfg, capacity)
				res, err := s.Run(burstRequests(t, names...), pipeline.DefaultOptions())
				if err != nil {
					t.Fatalf("plan cache %d: %v", capacity, err)
				}
				return res
			}
			uncached := run(0)
			cached := run(8)
			if got, want := canonicalRun(cached), canonicalRun(uncached); got != want {
				t.Errorf("cached run diverged from uncached:\n--- cached ---\n%s--- uncached ---\n%s", got, want)
			}
			if cached.PlanCacheHits+cached.PlanCacheMisses != uint64(cached.Windows) {
				t.Errorf("plan cache traffic %d+%d does not cover %d windows",
					cached.PlanCacheHits, cached.PlanCacheMisses, cached.Windows)
			}
			if uncached.PlanCacheHits != 0 || uncached.PlanCacheMisses != 0 {
				t.Errorf("uncached run reports plan-cache traffic %d/%d",
					uncached.PlanCacheHits, uncached.PlanCacheMisses)
			}
			if sc.events == nil && cached.PlanCacheHits == 0 {
				t.Error("steady-state run never hit the plan cache")
			}
			if sc.name == "mid-window-offline" && cached.Replans < 1 {
				t.Errorf("mid-window scenario never interrupted a window (replans=%d)", cached.Replans)
			}
			// The run report mirrors the Result's plan-cache counters.
			if r := cached.Report; r.Planner.PlanCacheHits != cached.PlanCacheHits ||
				r.Planner.PlanCacheMisses != cached.PlanCacheMisses {
				t.Errorf("report plan-cache counters %d/%d != result %d/%d",
					r.Planner.PlanCacheHits, r.Planner.PlanCacheMisses,
					cached.PlanCacheHits, cached.PlanCacheMisses)
			}
		})
	}
}

// TestStreamDegradationNoOpEventsKeepPlanCache is the regression test for
// the no-op invalidation fix: events that restate the SoC's current state
// (online for an in-service processor, a throttle at factor 1, the bus at
// full capacity) must not flush the cost cache or the plan cache — a warm
// stream stays all-hits through them. A genuinely state-changing event on
// the same setup must still force a miss (the control).
func TestStreamDegradationNoOpEventsKeepPlanCache(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet,
		model.ResNet50, model.SqueezeNet,
		model.ResNet50, model.SqueezeNet,
	}
	opts := core.DefaultOptions()
	opts.PlanCache = 8
	pl, err := core.NewPlanner(soc.Kirin990(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxWindow: 2, MaxBatch: 1}
	warm, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 3 || res.PlanCacheMisses != 1 || res.PlanCacheHits != 2 {
		t.Fatalf("warm run: windows=%d plan cache %d hits / %d misses, want 3 windows, 2/1",
			res.Windows, res.PlanCacheHits, res.PlanCacheMisses)
	}

	// Redundant events, all due before the first window plans: every one
	// restates the current state, so nothing may invalidate.
	noop := cfg
	noop.Events = []soc.Event{
		{Kind: soc.EventProcessorOnline, Processor: "npu"},
		{Kind: soc.EventThermalThrottle, Processor: "cpu-big", Factor: 1},
		{Kind: soc.EventFrequencyScale, Processor: "gpu", Factor: 1},
		{Kind: soc.EventBandwidthSqueeze, Factor: 1},
	}
	costHits0, costMisses0 := pl.CacheStats()
	planHits0, planMisses0 := pl.PlanCacheStats()
	s2, err := NewScheduler(pl, noop)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s2.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsApplied != len(noop.Events) {
		t.Errorf("EventsApplied = %d, want %d (no-op events are still consumed)",
			res.EventsApplied, len(noop.Events))
	}
	if _, costMisses := pl.CacheStats(); costMisses != costMisses0 {
		t.Errorf("no-op events caused %d cost-cache misses", costMisses-costMisses0)
	}
	if costHits, _ := pl.CacheStats(); costHits == costHits0 {
		t.Error("second run did not exercise the cost cache at all")
	}
	planHits, planMisses := pl.PlanCacheStats()
	if planMisses != planMisses0 {
		t.Errorf("no-op events caused %d plan-cache misses (every window should hit)", planMisses-planMisses0)
	}
	if planHits != planHits0+uint64(res.Windows) {
		t.Errorf("plan-cache hits %d → %d across %d windows, want all-hits",
			planHits0, planHits, res.Windows)
	}

	// Control: a real throttle on the same planner must force a replan.
	real := cfg
	real.Events = []soc.Event{{Kind: soc.EventThermalThrottle, Processor: "cpu-big", Factor: 1.5}}
	_, planMisses1 := pl.PlanCacheStats()
	s3, err := NewScheduler(pl, real)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Run(burstRequests(t, names...), pipeline.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, planMisses2 := pl.PlanCacheStats(); planMisses2 == planMisses1 {
		t.Error("state-changing throttle caused no plan-cache miss — the no-op detection is too eager")
	}
}
