package stream

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the request-level tracing layer: every request carries a
// stable TraceID from admission to completion — across interrupts, requeues,
// retry backoffs and fleet failover handoffs — and yields one
// RequestTimeline whose phase events sit on the virtual clock and whose
// sojourn decomposes into components that sum exactly to the measured
// sojourn (the invariant the Decomp tests pin). Completed timelines publish
// into a TraceStore, the bounded flight recorder behind the observability
// server's /requests endpoint.

// TraceID identifies one request across its whole fleet-wide lifetime. The
// zero value means "unassigned": the fleet front-end assigns IDs from the
// fleet-wide request index before sharding (so a handoff re-admission keeps
// its ID), and a standalone scheduler run assigns from the run-local index.
type TraceID uint64

// NewTraceID derives a trace ID for the request at the given index via
// splitmix64 avalanche mixing — deterministic per run, decorrelated across
// indices, and never zero.
func NewTraceID(index int) TraceID {
	z := uint64(index+1) * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return TraceID(z)
}

// String renders the ID as 16 lowercase hex digits ("" for the zero ID).
func (t TraceID) String() string {
	if t == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(t))
}

// ParseTraceID parses the 16-hex-digit form back into a TraceID — the
// /requests?trace= query parameter.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("stream: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// Request lifecycle phases, in the order a request can visit them. A
// timeline always opens with PhaseArrived; PhaseCompleted (and PhaseMissed,
// when the deadline was blown) closes it.
const (
	PhaseArrived     = "arrived"         // virtual arrival instant
	PhaseQueued      = "queued"          // admitted to the scheduler queue
	PhaseAdmitted    = "window_admitted" // taken into a planning window
	PhasePlanned     = "planned"         // the window's plan succeeded
	PhaseExecuting   = "executing"       // the window's execution started
	PhaseInterrupted = "interrupted"     // in-flight work discarded by an event
	PhaseRequeued    = "requeued"        // pushed back to the queue head
	PhaseHalted      = "halted"          // run halted with this request unserved
	PhaseHandedOff   = "handed_off"      // re-routed to a failover device
	PhaseCompleted   = "completed"       // inference finished
	PhaseMissed      = "deadline_missed" // finished past Arrival+Deadline
)

// PhaseEvent is one lifecycle transition on the virtual clock.
type PhaseEvent struct {
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// At is the transition's virtual-clock instant.
	At time.Duration `json:"at"`
	// Device names the device the transition happened on ("" outside fleet
	// runs).
	Device string `json:"device,omitempty"`
	// Window is the planning-window index on that device, or -1 for
	// transitions outside any window (arrival, queueing, handoff transit).
	Window int `json:"window"`
}

// Breakdown decomposes a request's sojourn into where the virtual time
// went. QueueWait + Backoff + InterruptLoss + Exec + HandoffTransit ==
// Sojourn exactly for every completed request — the accounting telescopes
// over the request's window participations, so nothing is lost or double
// counted across interrupts, requeues and failover hops (VirtualSum pins
// it). PlanWall is the request's attributed share of real planner wall time;
// it lives on the wall clock, not the virtual clock (planning is modelled as
// instantaneous on the simulated timeline), so it is deliberately outside
// the sum.
type Breakdown struct {
	// QueueWait is time spent in the scheduler queue before being taken
	// into a window (summed across requeues).
	QueueWait time.Duration `json:"queue_wait"`
	// Backoff is virtual time spent inside a window's failed-plan retry
	// backoff while this request was admitted to it.
	Backoff time.Duration `json:"backoff"`
	// InterruptLoss is execution time discarded by window interrupts — work
	// the SoC performed on this request's windows that a degradation event
	// threw away.
	InterruptLoss time.Duration `json:"interrupt_loss"`
	// Exec is the time from the completing window's execution start to this
	// request's completion.
	Exec time.Duration `json:"exec"`
	// HandoffTransit is failover dead time: from the source device's last
	// covered instant to re-admission on the rescue device (zero outside
	// fleet runs).
	HandoffTransit time.Duration `json:"handoff_transit"`
	// PlanWall is the request's share of real planner wall-clock time
	// across its windows (window plan wall divided evenly among members).
	// Wall-clock domain: excluded from VirtualSum.
	PlanWall time.Duration `json:"plan_wall"`
}

// VirtualSum totals the virtual-clock components — for a completed request
// this equals its Sojourn exactly.
func (b Breakdown) VirtualSum() time.Duration {
	return b.QueueWait + b.Backoff + b.InterruptLoss + b.Exec + b.HandoffTransit
}

// Add folds another breakdown's components in (fleet timeline stitching).
func (b *Breakdown) Add(o Breakdown) {
	b.QueueWait += o.QueueWait
	b.Backoff += o.Backoff
	b.InterruptLoss += o.InterruptLoss
	b.Exec += o.Exec
	b.HandoffTransit += o.HandoffTransit
	b.PlanWall += o.PlanWall
}

// RequestTimeline is one request's full lifecycle record: identity, phase
// events on the virtual clock and the sojourn decomposition. For a fleet run
// with failover the fleet front-end stitches the per-device partial
// timelines into one fleet-wide timeline spanning every device the request
// touched.
type RequestTimeline struct {
	// Trace is the request's TraceID in 16-hex-digit form.
	Trace string `json:"trace"`
	// Index is the request's index: run-local for a standalone stream run,
	// fleet-wide once the fleet merges timelines.
	Index int `json:"index"`
	// Model is the request's network name.
	Model string `json:"model"`
	// Arrival is the (original) virtual arrival; Deadline the sojourn
	// budget (0 = none).
	Arrival  time.Duration `json:"arrival"`
	Deadline time.Duration `json:"deadline,omitempty"`
	// SLO is the request's resolved SLO class name.
	SLO string `json:"slo,omitempty"`
	// Handoff marks a request that was re-admitted by fleet failover at
	// least once.
	Handoff bool `json:"handoff,omitempty"`
	// Events is the phase history in virtual-clock order.
	Events []PhaseEvent `json:"events"`
	// Completed marks a finished request; a false value is a partial
	// timeline (the request was unserved when its run halted). Missed marks
	// a completion past the deadline.
	Completed bool `json:"completed"`
	Missed    bool `json:"missed,omitempty"`
	// Completion is the absolute completion instant; Sojourn is
	// Completion − Arrival. Both zero on a partial timeline.
	Completion time.Duration `json:"completion,omitempty"`
	Sojourn    time.Duration `json:"sojourn,omitempty"`
	// Breakdown decomposes the sojourn (see Breakdown).
	Breakdown Breakdown `json:"breakdown"`
}

// reqTracer collects per-request timelines during one scheduler run. All
// methods are nil-receiver-safe so the scheduler instruments
// unconditionally; a nil tracer costs one comparison per hook.
type reqTracer struct {
	device string
	reqs   []Request
	tls    []RequestTimeline
	// ready[i] is the instant request i (re)joined the queue: arrival at
	// first, the interrupt instant after a requeue. The decomposition
	// telescopes over [ready, coveredTo] intervals.
	ready []time.Duration
	// Current-window state: start instant, members admitted so far (a
	// stable prefix across retry attempts) and the execution start.
	winStart  time.Duration
	winIdx    int
	admitted  []int // globals admitted to the current window, admission order
	execStart time.Duration
}

// newReqTracer opens a timeline per request, assigning trace IDs to
// requests that carry none and recording the arrival events. defaultSLO is
// the config fallback class name for requests without their own.
func newReqTracer(requests []Request, device string, defaultSLO string) *reqTracer {
	t := &reqTracer{
		device: device,
		reqs:   requests,
		tls:    make([]RequestTimeline, len(requests)),
		ready:  make([]time.Duration, len(requests)),
	}
	for i := range requests {
		id := requests[i].Trace
		if id == 0 {
			id = NewTraceID(i)
		}
		slo := defaultSLO
		if s := requests[i].SLO.String(); s != "" {
			slo = s
		}
		t.tls[i] = RequestTimeline{
			Trace:    id.String(),
			Index:    i,
			Model:    requests[i].Model.Name,
			Arrival:  requests[i].Arrival,
			Deadline: requests[i].Deadline,
			SLO:      slo,
			Handoff:  requests[i].Handoff,
			Events:   []PhaseEvent{{Phase: PhaseArrived, At: requests[i].Arrival, Device: device, Window: -1}},
		}
		t.ready[i] = requests[i].Arrival
	}
	return t
}

// traceID returns the request's assigned trace ID ("" when untraced).
func (t *reqTracer) traceID(global int) string {
	if t == nil {
		return ""
	}
	return t.tls[global].Trace
}

func (t *reqTracer) event(global int, phase string, at time.Duration, window int) {
	t.tls[global].Events = append(t.tls[global].Events,
		PhaseEvent{Phase: phase, At: at, Device: t.device, Window: window})
}

// enqueue records a request joining the scheduler queue at the given
// instant.
func (t *reqTracer) enqueue(global int, at time.Duration) {
	if t == nil {
		return
	}
	t.event(global, PhaseQueued, at, -1)
}

// beginWindow opens a planning window's tracking state.
func (t *reqTracer) beginWindow(window int, start time.Duration) {
	if t == nil {
		return
	}
	t.winIdx = window
	t.winStart = start
	t.admitted = t.admitted[:0]
}

// admitWindow records the window's member set for the current attempt.
// Retry backoff can admit new arrivals, so the member prefix grows across
// attempts; only the new suffix gets events.
func (t *reqTracer) admitWindow(window []int, at time.Duration) {
	if t == nil {
		return
	}
	for _, global := range window[len(t.admitted):] {
		t.admitted = append(t.admitted, global)
		t.event(global, PhaseAdmitted, at, t.winIdx)
	}
}

// planned marks the window's plan succeeding at the given instant (the
// execution start after any retry backoff) and settles each member's
// queue-wait and backoff components: ready → window start waited in queue,
// window start → exec start was retry backoff (the only thing advancing the
// virtual clock between planning attempts). Members that arrived mid-backoff
// charge the whole remainder to backoff.
func (t *reqTracer) planned(at time.Duration) {
	if t == nil {
		return
	}
	t.execStart = at
	for _, global := range t.admitted {
		tl := &t.tls[global]
		joined := t.ready[global]
		if joined < t.winStart {
			tl.Breakdown.QueueWait += t.winStart - t.ready[global]
			joined = t.winStart
		}
		tl.Breakdown.Backoff += at - joined
		t.event(global, PhasePlanned, at, t.winIdx)
		t.event(global, PhaseExecuting, at, t.winIdx)
	}
}

// attributePlanWall spreads the window's real planner wall time evenly
// across its members.
func (t *reqTracer) attributePlanWall(wall time.Duration) {
	if t == nil || len(t.admitted) == 0 {
		return
	}
	share := wall / time.Duration(len(t.admitted))
	for _, global := range t.admitted {
		t.tls[global].Breakdown.PlanWall += share
	}
}

// complete closes a request's timeline at its completion instant.
func (t *reqTracer) complete(global int, done time.Duration, missed bool) {
	if t == nil {
		return
	}
	tl := &t.tls[global]
	tl.Breakdown.Exec += done - t.execStart
	tl.Completed = true
	tl.Missed = missed
	tl.Completion = done
	tl.Sojourn = done - tl.Arrival
	t.event(global, PhaseCompleted, done, t.winIdx)
	if missed {
		t.event(global, PhaseMissed, done, t.winIdx)
	}
}

// interrupt records a window member whose in-flight work was discarded and
// requeued at the interrupt instant: the exec time spent so far is lost
// (InterruptLoss) and the request's ready instant resets for the next
// participation.
func (t *reqTracer) interrupt(global int, at time.Duration) {
	if t == nil {
		return
	}
	t.tls[global].Breakdown.InterruptLoss += at - t.execStart
	t.ready[global] = at
	t.event(global, PhaseInterrupted, at, t.winIdx)
	t.event(global, PhaseRequeued, at, t.winIdx)
}

// halt closes every unserved timeline at the halt instant: members of the
// aborted window charge their wait to queue-wait and (from the window start)
// backoff, other queued requests charge pure queue-wait, and requests that
// had not arrived stay untouched — so each partial timeline's components
// cover exactly [arrival, max(arrival, halt)], the contract the fleet's
// handoff-transit stitching relies on.
func (t *reqTracer) halt(at time.Duration, queue []int) {
	if t == nil {
		return
	}
	member := make(map[int]bool, len(t.admitted))
	for _, global := range t.admitted {
		member[global] = true
		tl := &t.tls[global]
		joined := t.ready[global]
		if joined < t.winStart {
			tl.Breakdown.QueueWait += t.winStart - joined
			joined = t.winStart
		}
		tl.Breakdown.Backoff += at - joined
		t.ready[global] = at
		t.event(global, PhaseHalted, at, t.winIdx)
	}
	for _, global := range queue {
		if member[global] {
			continue
		}
		t.tls[global].Breakdown.QueueWait += at - t.ready[global]
		t.ready[global] = at
		t.event(global, PhaseHalted, at, -1)
	}
}

// timelines releases the collected records (every request, completed or
// partial).
func (t *reqTracer) timelines() []RequestTimeline {
	if t == nil {
		return nil
	}
	return t.tls
}

// DefaultTraceCapacity is the TraceStore ring size applied to non-positive
// capacities; DefaultWorstCapacity bounds the worst-sojourn flight recorder.
const (
	DefaultTraceCapacity = 1024
	DefaultWorstCapacity = 32
)

// TraceStore is the bounded flight recorder behind the observability
// server's /requests endpoint: a ring of recent completed timelines, a map
// for O(1) trace-ID lookup, a worst-sojourn shortlist for post-hoc dumps of
// the fattest requests, and live fan-out subscriptions for SSE consumers.
// Putting a timeline under an existing trace ID replaces it everywhere —
// the hook the fleet uses to overwrite a rescue device's local view with
// the stitched fleet-wide timeline. Every method is nil-receiver-safe.
type TraceStore struct {
	mu       sync.Mutex
	cap      int
	worstCap int
	order    []TraceID // recent ring, completion order
	byTrace  map[TraceID]RequestTimeline
	worst    []RequestTimeline // sorted by descending sojourn, ≤ worstCap
	subs     map[int]chan RequestTimeline
	nextID   int
	total    int
}

// NewTraceStore returns a store retaining the last capacity timelines and
// the worstCap worst-sojourn ones (non-positive values select
// DefaultTraceCapacity / DefaultWorstCapacity).
func NewTraceStore(capacity, worstCap int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if worstCap <= 0 {
		worstCap = DefaultWorstCapacity
	}
	return &TraceStore{
		cap:      capacity,
		worstCap: worstCap,
		byTrace:  make(map[TraceID]RequestTimeline),
		subs:     make(map[int]chan RequestTimeline),
	}
}

// Put records one timeline, replacing any prior entry under the same trace
// ID, and fans it out to subscribers (drop-on-full, never blocking the
// scheduler).
func (s *TraceStore) Put(tl RequestTimeline) {
	if s == nil {
		return
	}
	id, err := ParseTraceID(tl.Trace)
	if err != nil {
		return
	}
	s.mu.Lock()
	if _, exists := s.byTrace[id]; !exists {
		if len(s.order) >= s.cap {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.byTrace, evict)
			s.dropWorst(evict)
		}
		s.order = append(s.order, id)
	} else {
		s.dropWorst(id)
	}
	s.byTrace[id] = tl
	s.insertWorst(tl)
	s.total++
	for _, ch := range s.subs {
		select {
		case ch <- tl:
		default:
		}
	}
	s.mu.Unlock()
}

// dropWorst removes the entry with the given trace from the worst list (if
// present). Called with the lock held.
func (s *TraceStore) dropWorst(id TraceID) {
	hex := id.String()
	for i := range s.worst {
		if s.worst[i].Trace == hex {
			s.worst = append(s.worst[:i], s.worst[i+1:]...)
			return
		}
	}
}

// insertWorst slots a timeline into the descending-sojourn shortlist.
// Called with the lock held.
func (s *TraceStore) insertWorst(tl RequestTimeline) {
	i := sort.Search(len(s.worst), func(i int) bool { return s.worst[i].Sojourn < tl.Sojourn })
	if i >= s.worstCap {
		return
	}
	s.worst = append(s.worst, RequestTimeline{})
	copy(s.worst[i+1:], s.worst[i:])
	s.worst[i] = tl
	if len(s.worst) > s.worstCap {
		s.worst = s.worst[:s.worstCap]
	}
}

// Get looks one timeline up by its hex trace ID.
func (s *TraceStore) Get(trace string) (RequestTimeline, bool) {
	if s == nil {
		return RequestTimeline{}, false
	}
	id, err := ParseTraceID(trace)
	if err != nil {
		return RequestTimeline{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tl, ok := s.byTrace[id]
	return tl, ok
}

// Recent snapshots the retained timelines, oldest first, capped at n
// (n ≤ 0 = all retained).
func (s *TraceStore) Recent(n int) []RequestTimeline {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.order
	if n > 0 && len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	out := make([]RequestTimeline, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.byTrace[id])
	}
	return out
}

// Worst returns the n worst-sojourn timelines, fattest first (n ≤ 0 = the
// whole shortlist).
func (s *TraceStore) Worst(n int) []RequestTimeline {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.worst
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return append([]RequestTimeline(nil), out...)
}

// Total reports how many timelines have ever been put (including replaced
// and evicted ones).
func (s *TraceStore) Total() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Subscribe registers a live subscription: every timeline put after the
// call is sent to the returned channel (buffered; overflow drops rather
// than blocking the scheduler). The cancel function unregisters and closes
// the channel.
func (s *TraceStore) Subscribe(buffer int) (<-chan RequestTimeline, func()) {
	if s == nil {
		ch := make(chan RequestTimeline)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 16
	}
	ch := make(chan RequestTimeline, buffer)
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}
