package stream

import (
	"fmt"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// TestRequestTraceIDs pins the trace-ID scheme: deterministic per index,
// never zero, collision-free over a realistic fleet, and round-trippable
// through the 16-hex-digit form the /requests endpoint uses.
func TestRequestTraceIDs(t *testing.T) {
	seen := make(map[TraceID]int)
	for i := 0; i < 10000; i++ {
		id := NewTraceID(i)
		if id == 0 {
			t.Fatalf("NewTraceID(%d) = 0 (zero means unassigned)", i)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("NewTraceID collision: indices %d and %d both map to %v", prev, i, id)
		}
		seen[id] = i
		if id != NewTraceID(i) {
			t.Fatalf("NewTraceID(%d) not deterministic", i)
		}
	}
	id := NewTraceID(42)
	hex := id.String()
	if len(hex) != 16 {
		t.Fatalf("TraceID string %q not 16 hex digits", hex)
	}
	back, err := ParseTraceID(hex)
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want %v", hex, back, err, id)
	}
	if TraceID(0).String() != "" {
		t.Errorf("zero TraceID renders %q, want empty", TraceID(0).String())
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
}

// checkDecomp asserts the tentpole invariant on every completed timeline:
// the virtual-clock components sum exactly to the measured sojourn, and the
// phase events are well-formed (monotone, opening with arrival, closing with
// completion).
func checkDecomp(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Timelines) == 0 {
		t.Fatal("traced run produced no timelines")
	}
	for i, tl := range res.Timelines {
		if tl.Trace == "" {
			t.Fatalf("timeline %d has no trace ID", i)
		}
		if len(tl.Events) == 0 || tl.Events[0].Phase != PhaseArrived {
			t.Fatalf("timeline %d does not open with %s: %+v", i, PhaseArrived, tl.Events)
		}
		for j := 1; j < len(tl.Events); j++ {
			if tl.Events[j].At < tl.Events[j-1].At {
				t.Fatalf("timeline %d events not monotone: %s@%v after %s@%v",
					i, tl.Events[j].Phase, tl.Events[j].At, tl.Events[j-1].Phase, tl.Events[j-1].At)
			}
		}
		if !tl.Completed {
			continue
		}
		if got := tl.Breakdown.VirtualSum(); got != tl.Sojourn {
			t.Errorf("timeline %d (%s): decomposition sums to %v, sojourn is %v (%+v)",
				i, tl.Trace, got, tl.Sojourn, tl.Breakdown)
		}
		if tl.Sojourn != res.Sojourns[i] {
			t.Errorf("timeline %d sojourn %v != result sojourn %v", i, tl.Sojourn, res.Sojourns[i])
		}
		last := tl.Events[len(tl.Events)-1].Phase
		if last != PhaseCompleted && last != PhaseMissed {
			t.Errorf("completed timeline %d closes with %s", i, last)
		}
	}
}

// TestDecompInvariantSmoothRun: with no degradation the decomposition is
// pure queue-wait + exec — backoff, interrupt loss and handoff transit must
// all be zero, and the sums must still telescope exactly.
func TestDecompInvariantSmoothRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequestTracing = true
	store := NewTraceStore(0, 0)
	cfg.Traces = store
	s := newScheduler(t, cfg)
	reqs := burstRequests(t, model.ResNet50, model.GoogLeNet, model.BERT, model.SqueezeNet)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkDecomp(t, res)
	for i, tl := range res.Timelines {
		b := tl.Breakdown
		if b.Backoff != 0 || b.InterruptLoss != 0 || b.HandoffTransit != 0 {
			t.Errorf("timeline %d has degradation components on a smooth run: %+v", i, b)
		}
		if tl.Missed {
			t.Errorf("timeline %d marked missed without a deadline", i)
		}
	}
	if store.Total() != len(reqs) {
		t.Errorf("trace store holds %d timelines, want %d", store.Total(), len(reqs))
	}
	for _, tl := range res.Timelines {
		got, ok := store.Get(tl.Trace)
		if !ok || got.Trace != tl.Trace {
			t.Errorf("trace %s not retrievable from the store", tl.Trace)
		}
	}
}

// TestDecompInvariantInterruptRequeue drives the interrupt/requeue path: the
// NPU goes offline mid-window, in-flight work is discarded and replanned.
// Every completed timeline must still sum exactly, requeued requests must
// carry interrupted/requeued events and a positive InterruptLoss.
func TestDecompInvariantInterruptRequeue(t *testing.T) {
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	base := newScheduler(t, DefaultConfig())
	baseRes, err := base.Run(burstRequests(t, names...), pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.RequestTracing = true
	cfg.DeviceName = "kirin"
	cfg.Events = []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: baseRes.WindowStats[0].End / 3},
	}
	s := newScheduler(t, cfg)
	reqs := burstRequests(t, names...)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried < 1 {
		t.Fatal("scenario did not requeue anything; interrupt path untested")
	}
	checkDecomp(t, res)

	interrupted := 0
	for i, tl := range res.Timelines {
		var sawInterrupt, sawRequeue bool
		for _, ev := range tl.Events {
			if ev.Device != "kirin" {
				t.Fatalf("timeline %d event on device %q, want kirin", i, ev.Device)
			}
			switch ev.Phase {
			case PhaseInterrupted:
				sawInterrupt = true
			case PhaseRequeued:
				sawRequeue = true
			}
		}
		if sawInterrupt != sawRequeue {
			t.Errorf("timeline %d interrupted=%t but requeued=%t", i, sawInterrupt, sawRequeue)
		}
		if sawInterrupt {
			interrupted++
			if tl.Breakdown.InterruptLoss <= 0 {
				t.Errorf("interrupted timeline %d has no InterruptLoss: %+v", i, tl.Breakdown)
			}
		}
	}
	if interrupted == 0 {
		t.Error("no timeline records an interrupt despite requeues")
	}

	// The report-level roll-up must agree with the per-request breakdowns.
	rep := res.Report
	if rep == nil || rep.Decomposition == nil {
		t.Fatal("traced run report lacks the decomposition roll-up")
	}
	var wantExec, wantLoss time.Duration
	for _, tl := range res.Timelines {
		if tl.Completed {
			wantExec += tl.Breakdown.Exec
			wantLoss += tl.Breakdown.InterruptLoss
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	close := func(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }
	if !close(rep.Decomposition.ExecMS, ms(wantExec)) || !close(rep.Decomposition.InterruptLossMS, ms(wantLoss)) {
		t.Errorf("report decomposition (exec %v, loss %v) disagrees with timelines (exec %v, loss %v)",
			rep.Decomposition.ExecMS, rep.Decomposition.InterruptLossMS, ms(wantExec), ms(wantLoss))
	}
}

// TestDecompInvariantBackoffHalt drives the retry-backoff and graceful-halt
// paths: every processor goes offline, plans fail past the retry budget, and
// the run halts. Partial timelines must close with a halted event whose
// components cover exactly [arrival, halt] — the covered-endpoint contract
// fleet handoff stitching builds on.
func TestDecompInvariantBackoffHalt(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2,
		model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2,
	}
	cfg := haltConfig(true, kirinOffline(2*time.Millisecond))
	cfg.RequestTracing = true
	s := newPlanCacheScheduler(t, cfg, 0)
	reqs := spreadRequests(t, names, time.Millisecond)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Unfinished) == 0 {
		t.Fatal("scenario did not halt; backoff/halt path untested")
	}
	checkDecomp(t, res)

	unfin := make(map[int]bool, len(res.Unfinished))
	for _, i := range res.Unfinished {
		unfin[i] = true
	}
	backoffs := 0
	for i, tl := range res.Timelines {
		if tl.Breakdown.Backoff > 0 {
			backoffs++
		}
		if !unfin[i] {
			continue
		}
		if tl.Completed {
			t.Fatalf("unfinished request %d has a completed timeline", i)
		}
		last := tl.Events[len(tl.Events)-1]
		if reqs[i].Arrival >= res.HaltedAt {
			// Arrived after the halt: untouched beyond the arrival event.
			if got := tl.Breakdown.VirtualSum(); got != 0 {
				t.Errorf("post-halt arrival %d has components %v", i, got)
			}
			continue
		}
		if last.Phase != PhaseHalted || last.At != res.HaltedAt {
			t.Errorf("partial timeline %d closes with %s@%v, want %s@%v",
				i, last.Phase, last.At, PhaseHalted, res.HaltedAt)
		}
		// Components cover arrival → halt exactly.
		if got, want := tl.Breakdown.VirtualSum(), res.HaltedAt-reqs[i].Arrival; got != want {
			t.Errorf("partial timeline %d covers %v, want %v (%+v)", i, got, want, tl.Breakdown)
		}
	}
	if res.PlanRetries > 0 && backoffs == 0 {
		t.Error("plan retries happened but no timeline accrued backoff")
	}
}

// TestSLOBudgetMissCountersMatch pins the /slo data path: the labeled
// stream_deadline_miss_total counters, Result.MissesBySLO, the report's
// per-class table and the SLO monitor's lifetime totals must all agree.
func TestSLOBudgetMissCountersMatch(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	mon := obs.NewSLOMonitor(0, map[string]float64{
		core.SLOLatencyCritical.String(): 0.01,
		core.SLOBalanced.String():        0.5,
	})
	cfg := DefaultConfig()
	cfg.RequestTracing = true
	cfg.Metrics = reg
	cfg.SLOMonitor = mon
	s := newScheduler(t, cfg)

	// Impossible deadlines: every request misses. Half carry an explicit
	// balanced class, half resolve to the latency-critical default.
	reqs := burstRequests(t, model.ResNet50, model.GoogLeNet, model.BERT, model.SqueezeNet)
	for i := range reqs {
		reqs[i].Deadline = time.Nanosecond
		if i%2 == 1 {
			reqs[i].SLO = core.SLOBalanced
		}
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkDecomp(t, res)
	if res.DeadlineMisses != len(reqs) {
		t.Fatalf("deadline misses = %d, want %d", res.DeadlineMisses, len(reqs))
	}

	wantBySLO := map[string]int{
		core.SLOLatencyCritical.String(): 2,
		core.SLOBalanced.String():        2,
	}
	snap := reg.Snapshot()
	totalLabeled := 0
	for class, want := range wantBySLO {
		if got := res.MissesBySLO[class]; got != want {
			t.Errorf("MissesBySLO[%s] = %d, want %d", class, got, want)
		}
		series := obs.SeriesName("stream_deadline_miss_total", "slo", class)
		if got := snap.Counters[series]; got != uint64(want) {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
		totalLabeled += int(snap.Counters[obs.SeriesName("stream_deadline_miss_total", "slo", class)])
		if got := res.Report.Stream.DeadlineMissesBySLO[class]; got != want {
			t.Errorf("report DeadlineMissesBySLO[%s] = %d, want %d", class, got, want)
		}
	}
	if totalLabeled != res.DeadlineMisses {
		t.Errorf("labeled miss counters sum to %d, unlabeled total is %d", totalLabeled, res.DeadlineMisses)
	}

	// The monitor's lifetime totals mirror the same completions.
	sloRep := mon.Report()
	if len(sloRep.Classes) != 2 {
		t.Fatalf("SLO report has %d classes, want 2: %+v", len(sloRep.Classes), sloRep.Classes)
	}
	for _, c := range sloRep.Classes {
		if int(c.Missed) != wantBySLO[c.Class] || c.Total != 2 {
			t.Errorf("SLO class %s: missed %d/%d, want %d/2", c.Class, c.Missed, c.Total, wantBySLO[c.Class])
		}
		if c.MissFraction != 1 {
			t.Errorf("SLO class %s miss fraction %v, want 1", c.Class, c.MissFraction)
		}
		if c.BudgetRemaining >= 1 {
			t.Errorf("SLO class %s at 100%% miss reports budget remaining %v", c.Class, c.BudgetRemaining)
		}
	}

	// Missed timelines record both exemplar trace IDs and the missed phase.
	h, ok := snap.Histograms["stream_sojourn_seconds"]
	if !ok {
		t.Fatal("no sojourn histogram in snapshot")
	}
	found := false
	for _, ex := range h.Exemplars {
		if ex != nil && ex.Trace != "" {
			found = true
		}
	}
	if !found {
		t.Error("sojourn histogram snapshot carries no trace exemplars under tracing")
	}
}

// TestDecompSojournQuantiles pins the nearest-rank quantile helper the
// report path reuses after its single sort.
func TestDecompSojournQuantiles(t *testing.T) {
	res := &Result{Sojourns: make([]time.Duration, 100)}
	for i := range res.Sojourns {
		// Store shuffled (reverse) so SojournQuantile must sort.
		res.Sojourns[i] = time.Duration(100-i) * time.Millisecond
	}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	} {
		if got := res.SojournQuantile(tc.p); got != tc.want {
			t.Errorf("SojournQuantile(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
	var empty Result
	if got := empty.SojournQuantile(95); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestRequestTraceStoreBounds covers the flight recorder: ring eviction,
// in-place replacement under one trace ID, the worst-sojourn shortlist and
// non-blocking subscriber fan-out.
func TestRequestTraceStoreBounds(t *testing.T) {
	store := NewTraceStore(4, 2)
	mk := func(i int, sojourn time.Duration) RequestTimeline {
		return RequestTimeline{
			Trace:     NewTraceID(i).String(),
			Index:     i,
			Model:     fmt.Sprintf("m%d", i),
			Completed: true,
			Sojourn:   sojourn,
		}
	}
	ch, cancel := store.Subscribe(2)
	defer cancel()

	for i := 0; i < 6; i++ {
		store.Put(mk(i, time.Duration(i+1)*time.Millisecond))
	}
	if store.Total() != 6 {
		t.Errorf("total = %d, want 6", store.Total())
	}
	recent := store.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(recent))
	}
	if recent[0].Index != 2 || recent[3].Index != 5 {
		t.Errorf("ring kept wrong window: first=%d last=%d, want 2..5", recent[0].Index, recent[3].Index)
	}
	if _, ok := store.Get(NewTraceID(0).String()); ok {
		t.Error("evicted trace still retrievable")
	}
	worst := store.Worst(0)
	if len(worst) != 2 || worst[0].Index != 5 || worst[1].Index != 4 {
		t.Errorf("worst shortlist wrong: %+v", worst)
	}

	// Replacing under the same trace ID (the fleet stitching hook) must not
	// grow the ring and must update both views.
	repl := mk(5, 50*time.Millisecond)
	repl.Handoff = true
	store.Put(repl)
	if got := len(store.Recent(0)); got != 4 {
		t.Errorf("replace grew the ring to %d", got)
	}
	if tl, ok := store.Get(NewTraceID(5).String()); !ok || !tl.Handoff {
		t.Error("replacement not visible via Get")
	}
	if w := store.Worst(1); len(w) != 1 || w[0].Sojourn != 50*time.Millisecond {
		t.Errorf("replacement not re-ranked in worst list: %+v", w)
	}

	// The 2-buffer subscriber saw the first two puts and dropped the rest
	// without ever blocking Put.
	got := 0
	for {
		select {
		case <-ch:
			got++
			continue
		default:
		}
		break
	}
	if got != 2 {
		t.Errorf("subscriber drained %d events, want 2 (rest dropped)", got)
	}

	// Nil-receiver safety across the whole surface.
	var nilStore *TraceStore
	nilStore.Put(mk(9, time.Second))
	if _, ok := nilStore.Get("anything"); ok {
		t.Error("nil store Get returned ok")
	}
	if nilStore.Recent(1) != nil || nilStore.Worst(1) != nil || nilStore.Total() != 0 {
		t.Error("nil store leaked data")
	}
	nch, ncancel := nilStore.Subscribe(1)
	ncancel()
	if _, open := <-nch; open {
		t.Error("nil store subscription channel not closed")
	}
}

// TestRequestTraceFeedDrops covers the fan-out drop accounting: a stuffed
// subscriber must drop (not block) and the drops must be observable per
// subscription, on the feed total and on the bound counter.
func TestRequestTraceFeedDrops(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	f := NewFeed(8)
	f.bindDrops(reg.Counter("stream_feed_drops_total"))
	_, drops, cancel := f.SubscribeWithDrops(1)
	defer cancel()
	for i := 0; i < 4; i++ {
		f.publish(WindowStat{Requests: i})
	}
	if got := drops(); got != 3 {
		t.Errorf("subscriber drops = %d, want 3", got)
	}
	if got := f.Drops(); got != 3 {
		t.Errorf("feed drops = %d, want 3", got)
	}
	if got := reg.Snapshot().Counters["stream_feed_drops_total"]; got != 3 {
		t.Errorf("stream_feed_drops_total = %d, want 3", got)
	}
	// An unstuffed subscriber drops nothing.
	_, drops2, cancel2 := f.SubscribeWithDrops(16)
	defer cancel2()
	f.publish(WindowStat{Requests: 9})
	if got := drops2(); got != 0 {
		t.Errorf("healthy subscriber drops = %d, want 0", got)
	}
}
