// Package stream runs Hetero²Pipe online: inference requests arrive over
// (virtual) time and the planner is invoked per planning window, the
// deployment mode Sec. V closes on — "in case of more inference requests,
// the planner should be scheduled more frequently to avoid enlarged search
// space". Windows execute back to back on the SoC; within a window the full
// two-step plan applies.
//
// The scheduler is degradation-aware: Config.Events injects thermal
// throttles, frequency scalings, processor offline/online transitions and
// bus-bandwidth squeezes on the same virtual clock. When an event falls
// inside a running window the window is interrupted: completions before the
// event stand, in-flight work is discarded and requeued, the affected cost
// tables are invalidated (only those — unaffected (model, processor) pairs
// stay cached), and the window is replanned against the degraded SoC. When
// a plan becomes infeasible (every processor a model needs is offline) the
// scheduler backs off on the virtual clock and retries, picking up
// recovery events as they come due.
package stream

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// Request is one arriving inference job.
type Request struct {
	// Model is the network to run.
	Model *model.Model
	// Arrival is the virtual arrival time.
	Arrival time.Duration
	// Deadline, when positive, is the sojourn budget: completing later than
	// Arrival+Deadline counts a deadline miss in the result (the request
	// still runs to completion — misses are reported, not dropped).
	Deadline time.Duration
	// Handoff marks a request re-admitted by fleet failover after its
	// original device went down. Completions of handoff requests are counted
	// on WindowStat.Handoffs and Result.Handoffs (and the
	// stream_handoffs_total counter); scheduling is otherwise identical.
	Handoff bool
	// SLO is the request's service-level objective class. Under frontier
	// planning (Config.Objective) each window resolves the strictest class
	// among its members (core.StrictestSLO) and executes the frontier point
	// serving it; under makespan planning the class is carried but inert.
	// The zero value defers to Config.SLO.
	SLO core.SLOClass
	// Trace is the request's distributed trace ID, stable across interrupts,
	// requeues and fleet failover handoffs. The fleet front-end assigns IDs
	// from the fleet-wide request index before sharding; a zero Trace on a
	// standalone traced run is assigned from the run-local index
	// (NewTraceID).
	Trace TraceID
}

// Config tunes the online scheduler.
type Config struct {
	// MaxWindow caps the number of requests planned together. Larger
	// windows give the planner more freedom but grow its search space —
	// the trade-off the paper's complexity analysis describes.
	MaxWindow int
	// MaxBatch, when above 1, coalesces lightweight same-model requests
	// inside each window (Appendix D).
	MaxBatch int
	// Events are degradation events injected on the virtual clock. They
	// are applied in At order; an event due mid-window interrupts and
	// replans the window.
	Events []soc.Event
	// MaxRetries bounds consecutive failed planning attempts for one
	// window before the run gives up. Zero means fail on the first
	// infeasible plan.
	MaxRetries int
	// RetryBackoff is the initial virtual-clock pause after a failed
	// planning attempt; it doubles per consecutive retry, saturating at
	// max(RetryBackoff, 1s) so arbitrarily large retry budgets never
	// overflow the virtual clock. Zero selects a default of 500µs.
	RetryBackoff time.Duration
	// HaltInfeasible turns an exhausted plan-retry budget from a run error
	// into a graceful halt: instead of failing, RunContext returns the
	// partial Result with Halted set, HaltedAt the virtual halt instant, and
	// Unfinished listing every request index not yet completed — the hook
	// fleet failover uses to re-route a dead device's backlog onto a healthy
	// peer. Non-infeasibility planning errors still fail the run.
	HaltInfeasible bool
	// Metrics, when set, receives stream-scheduler observability
	// (stream_windows_total, stream_replans_total, stream_requeues_total,
	// stream_plan_retries_total, stream_deadline_misses_total,
	// stream_events_applied_total, plus per-window plan/execute latency and
	// per-request sojourn histograms). The same registry is handed to the
	// executor for the real window executions unless the caller set
	// pipeline.Options.Metrics explicitly.
	Metrics *obs.Registry
	// CollectWindowTraces keeps every executed window's schedule and
	// executor timeline on the Result for Chrome-trace emission
	// (internal/trace.StreamChrome). Off by default: traces retain every
	// slice of every window.
	CollectWindowTraces bool
	// Logger, when set, receives structured records for the scheduler's
	// state transitions: degradation events applied (info), window
	// interrupts (warn), plan-retry backoffs (warn), deadline misses (warn)
	// and window completions (debug). Every record carries the active span
	// id under the "span" key when tracing is armed. Nil disables logging.
	Logger *slog.Logger
	// Feed, when set, receives every completed WindowStat live — the ring
	// behind the observability server's /windows endpoint and its SSE
	// variant. The feed also carries the run's readiness signal (Feed.Ready
	// is true while RunContext is accepting admissions). Nil disables the
	// feed.
	Feed *Feed
	// Objective selects the planning mode per window: the zero value
	// (core.ObjectiveMakespan) plans the min-makespan schedule as always;
	// core.ObjectiveFrontier enumerates the Pareto frontier over (makespan,
	// throughput, energy, peak memory) and executes the point selected by
	// the window's resolved SLO class.
	Objective core.ObjectiveMode
	// SLO is the default class for requests that carry none. Unset falls
	// back to core.SLOLatencyCritical, which keeps frontier mode's selected
	// plans byte-identical to makespan mode.
	SLO core.SLOClass
	// RequestTracing arms per-request lifecycle tracing: every request gets
	// a stable TraceID, a RequestTimeline of phase events on the virtual
	// clock (Result.Timelines), a sojourn decomposition whose virtual
	// components sum exactly to the measured sojourn, and a trace-ID
	// exemplar on the sojourn histogram. A non-nil Traces store arms tracing
	// implicitly.
	RequestTracing bool
	// Traces, when set, receives every completed request's timeline — the
	// bounded flight recorder behind the observability server's /requests
	// endpoint. Setting it arms RequestTracing.
	Traces *TraceStore
	// SLOMonitor, when set, observes every request completion under its
	// resolved SLO class name — per-class error budgets, windowed burn
	// rates and the /slo endpoint. Independent of RequestTracing.
	SLOMonitor *obs.SLOMonitor
	// DeviceName stamps this scheduler's phase events and partial timelines
	// with a device identity (set by the fleet layer; "" for standalone
	// runs).
	DeviceName string
}

// DefaultConfig plans up to eight requests per window with batching on and
// a modest retry budget for degradation recovery.
func DefaultConfig() Config {
	return Config{MaxWindow: 8, MaxBatch: 32, MaxRetries: 6, RetryBackoff: 500 * time.Microsecond}
}

// WindowStat records one planning window's degradation bookkeeping.
type WindowStat struct {
	// Start and End bound the window on the virtual clock. For an
	// interrupted window End is the interrupting event's time.
	Start, End time.Duration
	// Requests is the window's size; Completed how many finished;
	// Requeued how many were discarded and pushed back by an interrupt.
	Requests, Completed, Requeued int
	// EventsApplied counts degradation events applied before or during
	// this window; PlanRetries counts failed planning attempts backed off.
	EventsApplied, PlanRetries int
	// Interrupted marks a window cut short by a degradation event.
	Interrupted bool
	// PlanWall is the real (wall-clock) time the planner spent on this
	// window, across every retry. ExecSpan is the window's virtual
	// execution span as planned; for an interrupted window the realised
	// span is End − Start instead.
	PlanWall, ExecSpan time.Duration
	// CacheHits, CacheMisses and DPCells are this window's deltas of the
	// planner's lifetime counters (skewed only if another goroutine shares
	// the planner mid-run).
	CacheHits, CacheMisses, DPCells uint64
	// IncrementalReuse is this window's delta of the planner's
	// incremental-replanning memo counter: partition DPs served fully reused
	// or resumed mid-table (zero when core.Options.IncrementalReplan is off).
	IncrementalReuse uint64
	// PlanCacheHits and PlanCacheMisses are this window's deltas of the
	// planner's whole-plan cache counters (core.Options.PlanCache); both
	// zero when the plan cache is disabled. A steady-state window is one
	// hit; a window planned in full is one miss.
	PlanCacheHits, PlanCacheMisses uint64
	// Handoffs counts completions in this window of requests re-admitted by
	// fleet failover (Request.Handoff).
	Handoffs int
	// Objective is the executed objective vector of the plan this window
	// ran (populated in every mode — under makespan planning it prices the
	// winning plan, under frontier planning the selected point).
	Objective core.Objective
	// SLO is the class the window resolved (the strictest among its
	// members, or the config default); FrontierSize the number of
	// non-dominated points the planner returned. Both are zero-valued under
	// makespan planning.
	SLO          core.SLOClass
	FrontierSize int
}

// WindowTrace retains one executed window for trace emission: the schedule,
// the executor result, and where (if anywhere) a degradation event cut the
// window short. Collected only under Config.CollectWindowTraces.
type WindowTrace struct {
	// Window is the index into Result.WindowStats.
	Window int
	// Start is the window's absolute start on the virtual clock.
	Start time.Duration
	// Schedule is the planned window; Exec its executed timeline.
	Schedule *pipeline.Schedule
	Exec     *pipeline.Result
	// Interrupted marks a window cut short at InterruptAt (absolute);
	// slices past that instant were discarded and their requests requeued.
	Interrupted bool
	InterruptAt time.Duration
}

// Result aggregates the online run.
type Result struct {
	// Completions[i] is the absolute completion time of request i.
	Completions []time.Duration
	// Sojourns[i] is completion − arrival for request i.
	Sojourns []time.Duration
	// Makespan is the completion time of the last request — and only that.
	// Idle jumps to a late arrival and failed-plan retry backoff can leave
	// the virtual clock past the last completion; that scheduler-side time
	// is deliberately not folded in.
	Makespan time.Duration
	// Windows is the number of planning invocations.
	Windows int
	// CacheHits and CacheMisses are the planner cost-cache counters
	// accumulated over this run: hits are cost tables reused from earlier
	// windows (or earlier in the same window), misses are fresh
	// measurements. A steady-state stream of recurring models converges to
	// one miss per distinct (model, batch) and hits everywhere else.
	CacheHits, CacheMisses uint64
	// PlanCacheHits and PlanCacheMisses are the planner's whole-plan cache
	// counters accumulated over this run (both zero when
	// core.Options.PlanCache is disabled): a hit is a window served a
	// memoized plan with no partition/mitigation/steal/tail work at all.
	PlanCacheHits, PlanCacheMisses uint64
	// IncrementalReuse counts partition DPs this run served from the
	// incremental-replanning memo — fully reused or resumed mid-table after
	// a degradation event (zero when core.Options.IncrementalReplan is off).
	IncrementalReuse uint64
	// Replans counts windows interrupted by a degradation event and
	// replanned on the degraded SoC.
	Replans int
	// Retried counts request executions discarded by an interrupt and
	// requeued (one request interrupted twice counts twice).
	Retried int
	// PlanRetries counts planning attempts that failed (typically every
	// capable processor offline) and were retried after a backoff.
	PlanRetries int
	// DeadlineMisses counts requests that completed after their deadline.
	DeadlineMisses int
	// EventsApplied counts degradation events consumed during the run.
	EventsApplied int
	// Handoffs counts completed requests that carried Request.Handoff — work
	// this run finished on behalf of a failed fleet peer.
	Handoffs int
	// Halted marks a run stopped gracefully by Config.HaltInfeasible after
	// an exhausted plan-retry budget; HaltedAt is the virtual instant the
	// budget ran out and Unfinished lists every request index (queued or not
	// yet arrived) left incomplete. Their Completions/Sojourns slots are
	// zero. All three are zero-valued on a run that finishes normally.
	Halted     bool
	HaltedAt   time.Duration
	Unfinished []int
	// MissesBySLO attributes deadline misses to resolved SLO class names
	// (request class, else Config.SLO, else latency_critical). The values
	// sum to DeadlineMisses; nil when the run had none.
	MissesBySLO map[string]int
	// Timelines holds one RequestTimeline per request when request tracing
	// is armed (Config.RequestTracing or Config.Traces), indexed like
	// Completions. Requests left unserved by a halt carry partial timelines
	// (Completed false) — the fleet layer stitches them across failover
	// hops. Nil when tracing is off.
	Timelines []RequestTimeline
	// WindowStats details each planning window in order.
	WindowStats []WindowStat
	// Report is the structured run report, always populated on success; its
	// figures match this Result's fields exactly (see obs.RunReport).
	Report *obs.RunReport
	// WindowTraces holds every executed window when
	// Config.CollectWindowTraces is set; nil otherwise.
	WindowTraces []WindowTrace
}

// MeanSojourn returns the average request sojourn time.
func (r *Result) MeanSojourn() time.Duration {
	if len(r.Sojourns) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.Sojourns {
		sum += s
	}
	return sum / time.Duration(len(r.Sojourns))
}

// P95Sojourn returns the 95th-percentile sojourn.
func (r *Result) P95Sojourn() time.Duration {
	return r.SojournQuantile(95)
}

// SojournQuantile returns the p-th percentile sojourn (nearest rank,
// p in [0,100]) computed exactly from the recorded sojourns — the
// ground-truth counterpart of the bucket-interpolated
// obs.HistogramSnapshot.Quantile estimate.
func (r *Result) SojournQuantile(p int) time.Duration {
	if len(r.Sojourns) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.Sojourns))
	copy(sorted, r.Sojourns)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return quantileSorted(sorted, p)
}

// quantileSorted is the nearest-rank quantile over an already-sorted slice —
// the shared core of SojournQuantile and report building (which sorts once
// for its three percentiles instead of once per call).
func quantileSorted(sorted []time.Duration, p int) time.Duration {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Scheduler drives the per-window planning loop.
type Scheduler struct {
	planner *core.Planner
	cfg     Config
	events  []soc.Event // validated, sorted copy of cfg.Events
}

// NewScheduler wraps a planner for online use.
func NewScheduler(planner *core.Planner, cfg Config) (*Scheduler, error) {
	if planner == nil {
		return nil, errors.New("stream: nil planner")
	}
	if cfg.MaxWindow < 1 {
		return nil, fmt.Errorf("stream: max window %d < 1", cfg.MaxWindow)
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("stream: max retries %d < 0", cfg.MaxRetries)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 500 * time.Microsecond
	}
	for i := range cfg.Events {
		if err := cfg.Events[i].Validate(); err != nil {
			return nil, fmt.Errorf("stream: event %d: %w", i, err)
		}
	}
	return &Scheduler{planner: planner, cfg: cfg, events: soc.SortEvents(cfg.Events)}, nil
}

// Run executes the request stream to completion. It is RunContext under a
// background context.
func (s *Scheduler) Run(requests []Request, execOpts pipeline.Options) (*Result, error) {
	return s.RunContext(context.Background(), requests, execOpts)
}

// RunContext executes the request stream to completion. Requests must be
// sorted by arrival time. The virtual clock advances window by window: each
// planning round takes every request that has arrived (up to MaxWindow,
// FIFO), plans it, executes the window, and the clock jumps to the window's
// completion — or to the next arrival when the SoC is idle.
//
// Degradation events due at or before the clock are applied to the
// planner's SoC before each window is planned, and only the affected
// processors' cost tables are invalidated. An event due strictly inside a
// window's execution interrupts it: completions before the event stand,
// the rest of the window is requeued at the head of the queue and
// replanned after the event applies. Work in flight at the interrupt is
// discarded — a conservative model of migration off a degraded processor.
//
// Cancellation is checked at every window boundary, inside the planner and
// inside the executor's clock loop, so a cancelled context aborts within
// one planning window and returns an error wrapping ctx.Err().
func (s *Scheduler) RunContext(ctx context.Context, requests []Request, execOpts pipeline.Options) (*Result, error) {
	n := len(requests)
	res := &Result{
		Completions: make([]time.Duration, n),
		Sojourns:    make([]time.Duration, n),
	}
	for i := 1; i < n; i++ {
		if requests[i].Arrival < requests[i-1].Arrival {
			return nil, fmt.Errorf("stream: requests not sorted by arrival at %d", i)
		}
	}
	// The executor publishes into the stream's registry for the real window
	// executions unless the caller wired its own; the planner's internal
	// candidate evaluations stay unmetered either way (their exec options
	// come from core.Options.ExecOptions).
	if execOpts.Metrics == nil {
		execOpts.Metrics = s.cfg.Metrics
	}
	reg := s.cfg.Metrics
	mWindows := reg.Counter("stream_windows_total")
	mReplans := reg.Counter("stream_replans_total")
	mRequeues := reg.Counter("stream_requeues_total")
	mPlanRetries := reg.Counter("stream_plan_retries_total")
	mDeadlineMisses := reg.Counter("stream_deadline_misses_total")
	mEvents := reg.Counter("stream_events_applied_total")
	mHandoffs := reg.Counter("stream_handoffs_total")
	mPlanSeconds := reg.Histogram("stream_window_plan_seconds", obs.LatencyBuckets())
	mExecSeconds := reg.Histogram("stream_window_exec_seconds", obs.LatencyBuckets())
	mSojourn := reg.Histogram("stream_sojourn_seconds", obs.LatencyBuckets())

	// Per-request tracing: nil when unarmed (every reqTracer hook is
	// nil-receiver-safe, so the loop below instruments unconditionally).
	var tracer *reqTracer
	if s.cfg.RequestTracing || s.cfg.Traces != nil {
		tracer = newReqTracer(requests, s.cfg.DeviceName, s.requestSLO(Request{}).String())
	}

	// Root span of the run: every window, plan, replan and executor slice
	// span descends from it. The procs attribute carries the processor IDs
	// the Chrome-trace converter needs for its track names.
	procIDs := make([]string, s.planner.SoC().NumProcessors())
	for k := range procIDs {
		procIDs[k] = s.planner.SoC().Processors[k].ID
	}
	ctx, runSpan := obs.StartSpan(ctx, "stream_run",
		obs.Int("requests", int64(n)),
		obs.Str("soc", s.planner.SoC().Name),
		obs.Str("procs", strings.Join(procIDs, ",")))
	defer runSpan.End()

	// While the loop below runs, the scheduler is accepting admissions:
	// the feed's readiness signal (the obs server's /readyz). Fan-out drops
	// on slow subscribers mirror onto stream_feed_drops_total.
	s.cfg.Feed.bindDrops(reg.Counter("stream_feed_drops_total"))
	s.cfg.Feed.start()
	defer s.cfg.Feed.stop()

	logAt := func(level slog.Level, msg string, sp *obs.Span, args ...any) {
		if s.cfg.Logger == nil {
			return
		}
		s.cfg.Logger.Log(ctx, level, msg, append(args, "span", sp.IDHex())...)
	}

	hits0, misses0 := s.planner.CacheStats()
	planHits0, planMisses0 := s.planner.PlanCacheStats()
	reuse0 := s.planner.IncrementalReuse()
	var execAgg execAggregate
	now := time.Duration(0)
	next := 0       // next unadmitted arrival
	var queue []int // admitted, uncompleted request indices, FIFO
	eventIdx := 0   // next unapplied event in s.events

	// applyDue applies every event with At ≤ now and invalidates only the
	// affected processors' cost tables. Returns how many events applied.
	applyDue := func(sp *obs.Span) (int, error) {
		applied := 0
		for eventIdx < len(s.events) && s.events[eventIdx].At <= now {
			ev := s.events[eventIdx]
			affected, err := s.planner.SoC().Apply(ev)
			if err != nil {
				return applied, fmt.Errorf("stream: applying event %v: %w", ev, err)
			}
			s.planner.InvalidateProcessors(affected...)
			logAt(slog.LevelInfo, "degradation event applied", sp,
				"event", ev.String(), "at", now, "invalidated", len(affected))
			eventIdx++
			applied++
		}
		res.EventsApplied += applied
		mEvents.Add(uint64(applied))
		return applied, nil
	}

	record := func(global int, done time.Duration, ws *WindowStat, sp *obs.Span) {
		res.Completions[global] = done
		res.Sojourns[global] = done - requests[global].Arrival
		mSojourn.ObserveDurationExemplar(res.Sojourns[global], tracer.traceID(global))
		if requests[global].Handoff {
			ws.Handoffs++
			res.Handoffs++
			mHandoffs.Inc()
		}
		slo := s.requestSLO(requests[global]).String()
		missed := false
		if d := requests[global].Deadline; d > 0 && res.Sojourns[global] > d {
			missed = true
			res.DeadlineMisses++
			mDeadlineMisses.Inc()
			// Per-class miss attribution: the labeled counter feeding the
			// /slo view, and its Result-side mirror.
			reg.WithLabels("slo", slo).Counter("stream_deadline_miss_total").Inc()
			if res.MissesBySLO == nil {
				res.MissesBySLO = make(map[string]int)
			}
			res.MissesBySLO[slo]++
			logAt(slog.LevelWarn, "deadline miss", sp,
				"request", global, "sojourn", res.Sojourns[global], "deadline", d,
				"slo", slo, "trace", tracer.traceID(global))
		}
		s.cfg.SLOMonitor.Observe(slo, done, missed)
		tracer.complete(global, done, missed)
		if done > res.Makespan {
			res.Makespan = done
		}
	}

runLoop:
	for next < n || len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("stream: run cancelled: %w", err)
		}
		// Idle: jump to the next arrival.
		if len(queue) == 0 && requests[next].Arrival > now {
			now = requests[next].Arrival
		}
		ws := WindowStat{Start: now}
		wctx, wspan := obs.StartSpan(ctx, "window", obs.Int("window", int64(res.Windows)))
		if applied, err := applyDue(wspan); err != nil {
			return nil, err
		} else {
			ws.EventsApplied += applied
		}

		// Plan, retrying with saturating exponential virtual backoff when
		// the degraded SoC leaves no feasible partition (e.g. every
		// processor offline). Backoff advances the clock, which may bring a
		// recovery event due — and new arrivals: admission re-runs at the
		// top of every attempt so the replanned window sees the true queue,
		// not the one frozen before the first failure.
		hitsW, missesW := s.planner.CacheStats()
		planHitsW, planMissesW := s.planner.PlanCacheStats()
		cellsW := s.planner.DPCells()
		reuseW := s.planner.IncrementalReuse()
		planStart := time.Now()
		var sched *pipeline.Schedule
		var groups []core.BatchGroup
		var take int
		var window []int
		var winSLO core.SLOClass
		tracer.beginWindow(res.Windows, ws.Start)
		for attempt := 0; ; attempt++ {
			// Admit everything that has arrived by now.
			for next < n && requests[next].Arrival <= now {
				tracer.enqueue(next, requests[next].Arrival)
				queue = append(queue, next)
				next++
			}
			take = min(len(queue), s.cfg.MaxWindow)
			window = queue[:take]
			tracer.admitWindow(window, now)
			models := make([]*model.Model, take)
			for i, global := range window {
				models[i] = requests[global].Model
			}
			// The resolved class can change between attempts: backoff admits
			// new arrivals, and a stricter member tightens the whole window.
			winSLO = s.windowSLO(requests, window)
			var err error
			sched, groups, ws.FrontierSize, err = s.planWindow(wctx, models, winSLO)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrInfeasiblePartition) {
				return nil, fmt.Errorf("stream: planning window at %v: %w", now, err)
			}
			if attempt >= s.cfg.MaxRetries {
				if !s.cfg.HaltInfeasible {
					return nil, fmt.Errorf("stream: planning window at %v: %w", now, err)
				}
				// Graceful halt: hand the unserved backlog — the admitted
				// queue plus every request still to arrive — back to the
				// caller for fleet failover. The aborted window never
				// executed, so it is not appended to WindowStats; its plan
				// retries are already on the run totals.
				res.Unfinished = append(append([]int(nil), queue...), intRange(next, n)...)
				res.Halted = true
				res.HaltedAt = now
				tracer.halt(now, queue)
				wspan.SetAttrs(obs.Bool("halted", true), obs.Dur("vt_end", now))
				wspan.End()
				logAt(slog.LevelWarn, "run halted: plan-retry budget exhausted", wspan,
					"at", now, "unfinished", len(res.Unfinished))
				break runLoop
			}
			res.PlanRetries++
			ws.PlanRetries++
			mPlanRetries.Inc()
			backoff := retryBackoff(s.cfg.RetryBackoff, attempt)
			_, rsp := obs.StartSpan(wctx, "plan_retry",
				obs.Int("attempt", int64(attempt)), obs.Dur("backoff", backoff))
			rsp.End()
			logAt(slog.LevelWarn, "plan retry backoff", wspan,
				"attempt", attempt, "backoff", backoff, "at", now)
			now += backoff
			if applied, aerr := applyDue(wspan); aerr != nil {
				return nil, aerr
			} else {
				ws.EventsApplied += applied
			}
		}
		// The plan stands: `now` is the window's execution start after any
		// retry backoff. Settle every member's queue-wait/backoff components
		// and spread the planner's wall time across them.
		tracer.planned(now)
		ws.PlanWall = time.Since(planStart)
		tracer.attributePlanWall(ws.PlanWall)
		mPlanSeconds.ObserveDuration(ws.PlanWall)
		hitsW2, missesW2 := s.planner.CacheStats()
		ws.CacheHits, ws.CacheMisses = hitsW2-hitsW, missesW2-missesW
		planHitsW2, planMissesW2 := s.planner.PlanCacheStats()
		ws.PlanCacheHits, ws.PlanCacheMisses = planHitsW2-planHitsW, planMissesW2-planMissesW
		ws.DPCells = s.planner.DPCells() - cellsW
		ws.IncrementalReuse = s.planner.IncrementalReuse() - reuseW
		ws.Requests = take
		if s.cfg.Objective == core.ObjectiveFrontier {
			ws.SLO = winSLO
			// Per-class selection traffic: one increment per window, labeled
			// by the resolved class.
			reg.WithLabels("slo", winSLO.String()).Counter("stream_objective_choice_total").Inc()
			wspan.SetAttrs(
				obs.Str("slo", winSLO.String()),
				obs.Int("frontier_size", int64(ws.FrontierSize)))
		}

		// vt_start is the window's execution start on the virtual clock —
		// `now` after any retry backoff, matching WindowTrace.Start. The
		// executor's slice spans (children of this window via wctx) carry
		// window-relative virtual times; the Chrome converter re-bases them
		// on this attribute.
		wspan.SetAttrs(obs.Dur("vt_start", now), obs.Int("requests", int64(take)))

		exec, err := pipeline.ExecuteContext(wctx, sched, execOpts)
		if err != nil {
			return nil, fmt.Errorf("stream: executing window at %v: %w", now, err)
		}
		ws.ExecSpan = exec.Makespan
		// The window's executed objective vector — under frontier planning
		// this is the selected point realised, under makespan planning the
		// winner priced on the same axes.
		ws.Objective = core.Objective{
			Makespan:        exec.Makespan,
			Throughput:      exec.Throughput(),
			EnergyJoules:    exec.EnergyJoules,
			PeakMemoryBytes: exec.PeakMemoryBytes,
		}
		mExecSeconds.ObserveDuration(exec.Makespan)
		execAgg.fold(exec)

		// Does the next event land strictly inside this window's execution?
		windowEnd := now + exec.Makespan
		interruptAt := time.Duration(-1)
		if eventIdx < len(s.events) && s.events[eventIdx].At < windowEnd {
			interruptAt = s.events[eventIdx].At
		}

		if s.cfg.CollectWindowTraces {
			res.WindowTraces = append(res.WindowTraces, WindowTrace{
				Window:      res.Windows,
				Start:       now,
				Schedule:    sched,
				Exec:        exec,
				Interrupted: interruptAt >= 0,
				InterruptAt: interruptAt,
			})
		}

		if interruptAt < 0 {
			for pos, g := range groups {
				done := now + exec.Completions[pos]
				for _, local := range g.Requests {
					record(window[local], done, &ws, wspan)
				}
			}
			queue = queue[take:]
			now = windowEnd
			ws.Completed = take
			ws.End = now
		} else {
			// Interrupt: completions at or before the event stand; the rest
			// of the window is requeued (FIFO order preserved) and replanned
			// next round on the post-event SoC.
			survived := make(map[int]bool, take)
			for pos, g := range groups {
				done := now + exec.Completions[pos]
				if done > interruptAt {
					continue
				}
				for _, local := range g.Requests {
					record(window[local], done, &ws, wspan)
					survived[local] = true
				}
			}
			requeue := make([]int, 0, take-len(survived))
			for local, global := range window {
				if !survived[local] {
					requeue = append(requeue, global)
					tracer.interrupt(global, interruptAt)
				}
			}
			queue = append(requeue, queue[take:]...)
			now = interruptAt
			res.Replans++
			res.Retried += len(requeue)
			mReplans.Inc()
			mRequeues.Add(uint64(len(requeue)))
			ws.Completed = len(survived)
			ws.Requeued = len(requeue)
			ws.Interrupted = true
			ws.End = now
			_, psp := obs.StartSpan(wctx, "replan",
				obs.Dur("interrupt_at", interruptAt), obs.Int("completed", int64(len(survived))))
			psp.End()
			_, qsp := obs.StartSpan(wctx, "requeue", obs.Int("requests", int64(len(requeue))))
			qsp.End()
			logAt(slog.LevelWarn, "window interrupted", wspan,
				"window", res.Windows, "interrupt_at", interruptAt, "requeued", len(requeue))
		}
		wspan.SetAttrs(
			obs.Dur("vt_end", ws.End),
			obs.Bool("interrupted", ws.Interrupted),
			obs.Int("completed", int64(ws.Completed)))
		if ws.Interrupted {
			wspan.SetAttrs(obs.Dur("interrupt_at", interruptAt))
		}
		wspan.End()
		res.Windows++
		mWindows.Inc()
		res.WindowStats = append(res.WindowStats, ws)
		s.cfg.Feed.publish(ws)
		logAt(slog.LevelDebug, "window complete", wspan,
			"window", res.Windows-1, "requests", ws.Requests, "completed", ws.Completed,
			"start", ws.Start, "end", ws.End)
	}
	// Makespan is already the maximum completion time recorded above. The
	// clock (now) may legitimately sit past it after failed-plan backoff or
	// an idle jump, and that scheduler-side time must not be folded into
	// Makespan — a previous version did, inflating it on runs whose final
	// window retried after its last completion.
	hits1, misses1 := s.planner.CacheStats()
	res.CacheHits, res.CacheMisses = hits1-hits0, misses1-misses0
	planHits1, planMisses1 := s.planner.PlanCacheStats()
	res.PlanCacheHits, res.PlanCacheMisses = planHits1-planHits0, planMisses1-planMisses0
	res.IncrementalReuse = s.planner.IncrementalReuse() - reuse0
	if tracer != nil {
		res.Timelines = tracer.timelines()
		// Completed timelines feed the flight recorder; partial ones (halt
		// leftovers) stay on the Result for the fleet layer to stitch across
		// the failover hop.
		for i := range res.Timelines {
			if res.Timelines[i].Completed {
				s.cfg.Traces.Put(res.Timelines[i])
			}
		}
	}
	res.Report = s.buildReport(res, n, &execAgg)
	return res, nil
}

// requestSLO resolves one request's class for miss attribution and SLO
// budget accounting: the request's own class, else the config default, else
// latency-critical — the same chain windowSLO applies window-wide.
func (s *Scheduler) requestSLO(req Request) core.SLOClass {
	slo := req.SLO
	if slo.Kind == core.SLOUnset {
		slo = s.cfg.SLO
	}
	if slo.Kind == core.SLOUnset {
		slo = core.SLOLatencyCritical
	}
	return slo
}

// maxRetryBackoff caps a single failed-plan backoff pause. Callers with a
// base RetryBackoff above the cap keep their base (never pause shorter than
// configured); what saturates is the exponential growth.
const maxRetryBackoff = time.Second

// retryBackoff returns the virtual-clock pause after the given failed
// planning attempt: base doubled per attempt, saturating at
// max(base, maxRetryBackoff). The saturation replaces a raw base<<attempt,
// which overflows time.Duration around attempt 45 and moved the virtual
// clock backwards under large MaxRetries budgets.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	ceiling := maxRetryBackoff
	if base > ceiling {
		ceiling = base
	}
	b := base
	for i := 0; i < attempt && b < ceiling; i++ {
		b <<= 1
	}
	if b > ceiling {
		b = ceiling
	}
	return b
}

// execAggregate accumulates executor results across a run's windows for the
// run report. Interrupted windows fold in as executed: their discarded tail
// still describes work the SoC performed before the interrupt on the
// simulated timeline.
type execAggregate struct {
	slices  int
	bubble  time.Duration
	stalls  int
	peakMem int64
	slowSum float64
	slowMax float64
	slowN   int
}

func (a *execAggregate) fold(r *pipeline.Result) {
	a.slices += len(r.Timeline)
	a.bubble += r.BubbleTime
	a.stalls += r.AdmissionStalls
	if r.PeakMemoryBytes > a.peakMem {
		a.peakMem = r.PeakMemoryBytes
	}
	for _, e := range r.Timeline {
		a.slowSum += e.Slowdown
		a.slowN++
		if e.Slowdown > a.slowMax {
			a.slowMax = e.Slowdown
		}
	}
}

// buildReport assembles the structured run report from the finished Result.
// Every figure mirrors a Result field exactly (the acceptance invariant the
// obs tests pin); the per-layer breakdowns add only derived ratios and
// unit conversions.
func (s *Scheduler) buildReport(res *Result, requests int, agg *execAggregate) *obs.RunReport {
	// One sort serves all three report percentiles (SojournQuantile itself
	// copies and sorts per call — fine one-off, wasteful three times here).
	var p50, p95, p99 time.Duration
	if len(res.Sojourns) > 0 {
		sorted := append([]time.Duration(nil), res.Sojourns...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		p50, p95, p99 = quantileSorted(sorted, 50), quantileSorted(sorted, 95), quantileSorted(sorted, 99)
	}
	rep := &obs.RunReport{
		SoC:           s.planner.SoC().Name,
		Requests:      requests,
		Completed:     requests - len(res.Unfinished),
		MakespanMS:    durMS(res.Makespan),
		MeanSojournMS: durMS(res.MeanSojourn()),
		P50SojournMS:  durMS(p50),
		P95SojournMS:  durMS(p95),
		P99SojournMS:  durMS(p99),
		Planner: obs.PlannerReport{
			CacheHits:        res.CacheHits,
			CacheMisses:      res.CacheMisses,
			PlanCacheHits:    res.PlanCacheHits,
			PlanCacheMisses:  res.PlanCacheMisses,
			IncrementalReuse: res.IncrementalReuse,
		},
		Executor: obs.ExecutorReport{
			Slices:          agg.slices,
			BubbleMS:        durMS(agg.bubble),
			AdmissionStalls: agg.stalls,
			PeakMemoryBytes: agg.peakMem,
			MaxSlowdown:     agg.slowMax,
		},
		Stream: obs.StreamReport{
			Windows:        res.Windows,
			Replans:        res.Replans,
			Requeues:       res.Retried,
			PlanRetries:    res.PlanRetries,
			DeadlineMisses: res.DeadlineMisses,
			EventsApplied:  res.EventsApplied,
			Handoffs:       res.Handoffs,
			Halted:         res.Halted,
			Unfinished:     len(res.Unfinished),
		},
	}
	if len(res.MissesBySLO) > 0 {
		rep.Stream.DeadlineMissesBySLO = make(map[string]int, len(res.MissesBySLO))
		for class, misses := range res.MissesBySLO {
			rep.Stream.DeadlineMissesBySLO[class] = misses
		}
	}
	if res.Timelines != nil {
		rep.Decomposition = DecomposeTimelines(res.Timelines)
	}
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		rep.Planner.CacheHitRatio = float64(res.CacheHits) / float64(total)
	}
	if total := res.PlanCacheHits + res.PlanCacheMisses; total > 0 {
		rep.Planner.PlanCacheHitRatio = float64(res.PlanCacheHits) / float64(total)
	}
	if agg.slowN > 0 {
		rep.Executor.MeanSlowdown = agg.slowSum / float64(agg.slowN)
	}
	for i, ws := range res.WindowStats {
		rep.Planner.PlanWallMS += durMS(ws.PlanWall)
		rep.Planner.DPCells += ws.DPCells
		rep.Windows = append(rep.Windows, obs.WindowReport{
			Index:            i,
			StartMS:          durMS(ws.Start),
			EndMS:            durMS(ws.End),
			PlanWallMS:       durMS(ws.PlanWall),
			ExecMS:           durMS(ws.ExecSpan),
			Requests:         ws.Requests,
			Completed:        ws.Completed,
			Requeued:         ws.Requeued,
			PlanRetries:      ws.PlanRetries,
			CacheHits:        ws.CacheHits,
			CacheMisses:      ws.CacheMisses,
			PlanCacheHits:    ws.PlanCacheHits,
			PlanCacheMisses:  ws.PlanCacheMisses,
			DPCells:          ws.DPCells,
			IncrementalReuse: ws.IncrementalReuse,
			Interrupted:      ws.Interrupted,
			Handoffs:         ws.Handoffs,
			EnergyJoules:     ws.Objective.EnergyJoules,
			SLO:              ws.SLO.String(),
			FrontierSize:     ws.FrontierSize,
		})
	}
	return rep
}

// durMS converts a duration to float milliseconds for the report.
func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// DecomposeTimelines aggregates completed timelines' sojourn breakdowns into
// the report's decomposition roll-up (shared by the stream and fleet report
// builders).
func DecomposeTimelines(tls []RequestTimeline) *obs.DecompositionReport {
	d := &obs.DecompositionReport{}
	for i := range tls {
		if !tls[i].Completed {
			continue
		}
		b := tls[i].Breakdown
		d.Requests++
		d.QueueWaitMS += durMS(b.QueueWait)
		d.BackoffMS += durMS(b.Backoff)
		d.InterruptLossMS += durMS(b.InterruptLoss)
		d.ExecMS += durMS(b.Exec)
		d.HandoffTransitMS += durMS(b.HandoffTransit)
		d.PlanWallMS += durMS(b.PlanWall)
	}
	return d
}

// planWindow plans one window's models, with or without Appendix-D
// batching, and returns the schedule plus the group→request mapping. Under
// Config.Objective == core.ObjectiveFrontier the planner enumerates the
// Pareto frontier and the window executes the point slo selects; the
// returned size is the frontier's point count (0 under makespan planning).
func (s *Scheduler) planWindow(ctx context.Context, models []*model.Model, slo core.SLOClass) (*pipeline.Schedule, []core.BatchGroup, int, error) {
	if s.cfg.Objective == core.ObjectiveFrontier {
		if s.cfg.MaxBatch > 1 {
			f, groups, err := s.planner.PlanFrontierBatchedContext(ctx, models, s.cfg.MaxBatch)
			if err != nil {
				return nil, nil, 0, err
			}
			pt := f.Select(slo)
			return pt.Plan.Schedule, core.OrderGroups(groups, pt.Plan.Order), f.Size(), nil
		}
		f, err := s.planner.PlanFrontierModelsContext(ctx, models)
		if err != nil {
			return nil, nil, 0, err
		}
		pt := f.Select(slo)
		return pt.Plan.Schedule, identityGroups(models, pt.Plan.Order), f.Size(), nil
	}
	if s.cfg.MaxBatch > 1 {
		plan, groups, err := s.planner.PlanBatchedContext(ctx, models, s.cfg.MaxBatch)
		if err != nil {
			return nil, nil, 0, err
		}
		return plan.Schedule, groups, 0, nil
	}
	plan, err := s.planner.PlanModelsContext(ctx, models)
	if err != nil {
		return nil, nil, 0, err
	}
	return plan.Schedule, identityGroups(models, plan.Order), 0, nil
}

// windowSLO resolves the class one window serves: the strictest class among
// its member requests (core.StrictestSLO), the config default when every
// member is unset, and latency-critical when that is unset too — so the
// default frontier selection is byte-identical to makespan planning.
func (s *Scheduler) windowSLO(requests []Request, window []int) core.SLOClass {
	classes := make([]core.SLOClass, len(window))
	for i, global := range window {
		classes[i] = requests[global].SLO
	}
	slo := core.StrictestSLO(classes...)
	if slo.Kind == core.SLOUnset {
		slo = s.cfg.SLO
	}
	if slo.Kind == core.SLOUnset {
		slo = core.SLOLatencyCritical
	}
	return slo
}

// identityGroups wraps unbatched requests as singleton groups following the
// plan's ordering.
func identityGroups(models []*model.Model, order []int) []core.BatchGroup {
	out := make([]core.BatchGroup, len(order))
	for pos, orig := range order {
		out[pos] = core.BatchGroup{Model: models[orig], Requests: []int{orig}}
	}
	return out
}

// intRange returns [lo, hi) as a slice (nil when empty).
func intRange(lo, hi int) []int {
	if lo >= hi {
		return nil
	}
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// PoissonArrivals generates a deterministic arrival sequence with
// exponential inter-arrival gaps of the given mean, using a simple LCG so
// the stream is reproducible without wall-clock or math/rand state.
func PoissonArrivals(models []*model.Model, meanGap time.Duration, seed uint64) []Request {
	out := make([]Request, len(models))
	state := seed*6364136223846793005 + 1442695040888963407
	at := time.Duration(0)
	for i, m := range models {
		state = state*6364136223846793005 + 1442695040888963407
		// Uniform in (0, 1] from the top bits.
		u := float64(state>>11)/float64(1<<53) + 1e-12
		gap := time.Duration(-float64(meanGap) * math.Log(u))
		at += gap
		out[i] = Request{Model: m, Arrival: at}
	}
	return out
}

// DeviceSeed derives a decorrelated per-device seed from a fleet-wide base
// seed via splitmix64. PoissonArrivals' LCG maps nearby seeds to nearly
// identical gap sequences (one multiply-add of the seed feeds the stream
// state), so seed+device would correlate every device's arrivals; splitmix64's
// avalanche mixing makes each device's substream independent while keeping the
// whole fleet reproducible from one base seed.
func DeviceSeed(seed uint64, device int) uint64 {
	z := seed + uint64(device+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
