// Package stream runs Hetero²Pipe online: inference requests arrive over
// (virtual) time and the planner is invoked per planning window, the
// deployment mode Sec. V closes on — "in case of more inference requests,
// the planner should be scheduled more frequently to avoid enlarged search
// space". Windows execute back to back on the SoC; within a window the full
// two-step plan applies.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
)

// Request is one arriving inference job.
type Request struct {
	// Model is the network to run.
	Model *model.Model
	// Arrival is the virtual arrival time.
	Arrival time.Duration
}

// Config tunes the online scheduler.
type Config struct {
	// MaxWindow caps the number of requests planned together. Larger
	// windows give the planner more freedom but grow its search space —
	// the trade-off the paper's complexity analysis describes.
	MaxWindow int
	// MaxBatch, when above 1, coalesces lightweight same-model requests
	// inside each window (Appendix D).
	MaxBatch int
}

// DefaultConfig plans up to eight requests per window with batching on.
func DefaultConfig() Config {
	return Config{MaxWindow: 8, MaxBatch: 32}
}

// Result aggregates the online run.
type Result struct {
	// Completions[i] is the absolute completion time of request i.
	Completions []time.Duration
	// Sojourns[i] is completion − arrival for request i.
	Sojourns []time.Duration
	// Makespan is the completion of the last request.
	Makespan time.Duration
	// Windows is the number of planning invocations.
	Windows int
	// CacheHits and CacheMisses are the planner cost-cache counters
	// accumulated over this run: hits are cost tables reused from earlier
	// windows (or earlier in the same window), misses are fresh
	// measurements. A steady-state stream of recurring models converges to
	// one miss per distinct (model, batch) and hits everywhere else.
	CacheHits, CacheMisses uint64
}

// MeanSojourn returns the average request sojourn time.
func (r *Result) MeanSojourn() time.Duration {
	if len(r.Sojourns) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.Sojourns {
		sum += s
	}
	return sum / time.Duration(len(r.Sojourns))
}

// P95Sojourn returns the 95th-percentile sojourn.
func (r *Result) P95Sojourn() time.Duration {
	if len(r.Sojourns) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.Sojourns))
	copy(sorted, r.Sojourns)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := (len(sorted)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// Scheduler drives the per-window planning loop.
type Scheduler struct {
	planner *core.Planner
	cfg     Config
}

// NewScheduler wraps a planner for online use.
func NewScheduler(planner *core.Planner, cfg Config) (*Scheduler, error) {
	if planner == nil {
		return nil, errors.New("stream: nil planner")
	}
	if cfg.MaxWindow < 1 {
		return nil, fmt.Errorf("stream: max window %d < 1", cfg.MaxWindow)
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	return &Scheduler{planner: planner, cfg: cfg}, nil
}

// Run executes the request stream to completion. Requests must be sorted by
// arrival time. The virtual clock advances window by window: each planning
// round takes every request that has arrived (up to MaxWindow, FIFO), plans
// it, executes the window, and the clock jumps to the window's completion —
// or to the next arrival when the SoC is idle.
func (s *Scheduler) Run(requests []Request, execOpts pipeline.Options) (*Result, error) {
	n := len(requests)
	res := &Result{
		Completions: make([]time.Duration, n),
		Sojourns:    make([]time.Duration, n),
	}
	for i := 1; i < n; i++ {
		if requests[i].Arrival < requests[i-1].Arrival {
			return nil, fmt.Errorf("stream: requests not sorted by arrival at %d", i)
		}
	}
	hits0, misses0 := s.planner.CacheStats()
	now := time.Duration(0)
	next := 0
	for next < n {
		if requests[next].Arrival > now {
			now = requests[next].Arrival // idle until the next arrival
		}
		// Gather the window.
		end := next
		for end < n && end-next < s.cfg.MaxWindow && requests[end].Arrival <= now {
			end++
		}
		window := requests[next:end]
		models := make([]*model.Model, len(window))
		for i, rq := range window {
			models[i] = rq.Model
		}

		var sched *pipeline.Schedule
		var groups []core.BatchGroup
		var err error
		if s.cfg.MaxBatch > 1 {
			var plan *core.Plan
			plan, groups, err = s.planner.PlanBatched(models, s.cfg.MaxBatch)
			if err == nil {
				sched = plan.Schedule
			}
		} else {
			var plan *core.Plan
			plan, err = s.planner.PlanModels(models)
			if err == nil {
				sched = plan.Schedule
				groups = identityGroups(models, plan.Order)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("stream: planning window at %v: %w", now, err)
		}
		exec, err := pipeline.Execute(sched, execOpts)
		if err != nil {
			return nil, fmt.Errorf("stream: executing window at %v: %w", now, err)
		}
		// Map group completions back to original requests.
		for pos, g := range groups {
			done := now + exec.Completions[pos]
			for _, local := range g.Requests {
				global := next + local
				res.Completions[global] = done
				res.Sojourns[global] = done - requests[global].Arrival
			}
		}
		now += exec.Makespan
		res.Windows++
		next = end
	}
	res.Makespan = now
	hits1, misses1 := s.planner.CacheStats()
	res.CacheHits, res.CacheMisses = hits1-hits0, misses1-misses0
	return res, nil
}

// identityGroups wraps unbatched requests as singleton groups following the
// plan's ordering.
func identityGroups(models []*model.Model, order []int) []core.BatchGroup {
	out := make([]core.BatchGroup, len(order))
	for pos, orig := range order {
		out[pos] = core.BatchGroup{Model: models[orig], Requests: []int{orig}}
	}
	return out
}

// PoissonArrivals generates a deterministic arrival sequence with
// exponential inter-arrival gaps of the given mean, using a simple LCG so
// the stream is reproducible without wall-clock or math/rand state.
func PoissonArrivals(models []*model.Model, meanGap time.Duration, seed uint64) []Request {
	out := make([]Request, len(models))
	state := seed*6364136223846793005 + 1442695040888963407
	at := time.Duration(0)
	for i, m := range models {
		state = state*6364136223846793005 + 1442695040888963407
		// Uniform in (0, 1] from the top bits.
		u := float64(state>>11)/float64(1<<53) + 1e-12
		gap := time.Duration(-float64(meanGap) * math.Log(u))
		at += gap
		out[i] = Request{Model: m, Arrival: at}
	}
	return out
}
