package stream

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func newScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func streamOf(t *testing.T, meanGap time.Duration, names ...string) []Request {
	t.Helper()
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	return PoissonArrivals(models, meanGap, 7)
}

func TestSchedulerBasics(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	reqs := streamOf(t, 20*time.Millisecond,
		model.ResNet50, model.SqueezeNet, model.MobileNetV2, model.GoogLeNet,
		model.BERT, model.SqueezeNet, model.MobileNetV2, model.AlexNet)
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Windows < 1 {
		t.Error("no planning windows executed")
	}
	for i := range reqs {
		if res.Completions[i] < reqs[i].Arrival {
			t.Errorf("request %d completes at %v before arriving at %v",
				i, res.Completions[i], reqs[i].Arrival)
		}
		if res.Sojourns[i] != res.Completions[i]-reqs[i].Arrival {
			t.Errorf("request %d sojourn inconsistent", i)
		}
	}
	if res.MeanSojourn() <= 0 || res.P95Sojourn() < res.MeanSojourn() {
		t.Errorf("sojourn stats inconsistent: mean %v p95 %v", res.MeanSojourn(), res.P95Sojourn())
	}
	if res.Makespan < res.Completions[len(reqs)-1] {
		t.Error("makespan below final completion")
	}
}

func TestSchedulerWindowCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWindow = 2
	cfg.MaxBatch = 1
	s := newScheduler(t, cfg)
	// All requests arrive at time zero: windows must chunk by the cap.
	models, err := workload.Instantiate([]string{
		model.SqueezeNet, model.SqueezeNet, model.SqueezeNet,
		model.SqueezeNet, model.SqueezeNet})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(models))
	for i, m := range models {
		reqs[i] = Request{Model: m}
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 3 { // 2 + 2 + 1
		t.Errorf("windows = %d, want 3", res.Windows)
	}
}

func TestSchedulerIdleJump(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	models, err := workload.Instantiate([]string{model.SqueezeNet, model.SqueezeNet})
	if err != nil {
		t.Fatal(err)
	}
	// Second request arrives long after the first completes.
	reqs := []Request{
		{Model: models[0], Arrival: 0},
		{Model: models[1], Arrival: 5 * time.Second},
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 2 {
		t.Errorf("windows = %d, want 2 (idle gap separates them)", res.Windows)
	}
	if res.Completions[1] < 5*time.Second {
		t.Errorf("second request completed at %v before its arrival", res.Completions[1])
	}
	// The first request's sojourn is unaffected by the idle gap.
	if res.Sojourns[0] > time.Second {
		t.Errorf("first sojourn %v implausibly long", res.Sojourns[0])
	}
}

func TestSchedulerRejectsUnsorted(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	models, err := workload.Instantiate([]string{model.SqueezeNet, model.SqueezeNet})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Model: models[0], Arrival: time.Second},
		{Model: models[1], Arrival: 0},
	}
	if _, err := s.Run(reqs, pipeline.DefaultOptions()); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}

func TestSchedulerEmpty(t *testing.T) {
	s := newScheduler(t, DefaultConfig())
	res, err := s.Run(nil, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 0 || res.Makespan != 0 {
		t.Errorf("empty stream result %+v", res)
	}
	if res.MeanSojourn() != 0 || res.P95Sojourn() != 0 {
		t.Error("empty stream sojourn stats non-zero")
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil, DefaultConfig()); err == nil {
		t.Error("nil planner accepted")
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(pl, Config{MaxWindow: 0}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	models, err := workload.Instantiate([]string{model.SqueezeNet, model.BERT, model.ViT})
	if err != nil {
		t.Fatal(err)
	}
	a := PoissonArrivals(models, 10*time.Millisecond, 42)
	b := PoissonArrivals(models, 10*time.Millisecond, 42)
	for i := range a {
		if a[i].Arrival != b[i].Arrival {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i].Arrival, b[i].Arrival)
		}
	}
	// Arrivals strictly increase and scale with the mean gap.
	for i := 1; i < len(a); i++ {
		if a[i].Arrival <= a[i-1].Arrival {
			t.Fatal("arrivals not increasing")
		}
	}
	wide := PoissonArrivals(models, time.Second, 42)
	if wide[len(wide)-1].Arrival <= a[len(a)-1].Arrival {
		t.Error("larger mean gap did not widen the stream")
	}
}

// TestStreamCostCacheReuse: window N+1 must reuse window N's cost tables —
// the planner measures each distinct (model, batch) once for the whole
// stream and every later window is all hits.
func TestStreamCostCacheReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWindow = 2
	cfg.MaxBatch = 1
	s := newScheduler(t, cfg)
	models, err := workload.Instantiate([]string{
		model.ResNet50, model.SqueezeNet,
		model.ResNet50, model.SqueezeNet,
		model.ResNet50, model.SqueezeNet})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(models))
	for i, m := range models {
		reqs[i] = Request{Model: m}
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 2 {
		t.Fatalf("windows = %d, want ≥ 2 for a reuse test", res.Windows)
	}
	// Two distinct models → exactly two measurements; every other lookup
	// (4 across the later windows) is a hit.
	if res.CacheMisses != 2 {
		t.Errorf("cache misses = %d, want 2 (one per distinct model)", res.CacheMisses)
	}
	if res.CacheHits != uint64(len(models))-2 {
		t.Errorf("cache hits = %d, want %d", res.CacheHits, len(models)-2)
	}
}

// TestStreamParallelismInvariant: the whole online run — completions,
// sojourns, window count — is identical whether the planner runs
// sequentially or across a pool, because every window's plan is.
func TestStreamParallelismInvariant(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet, model.BERT, model.MobileNetV2,
		model.GoogLeNet, model.SqueezeNet, model.YOLOv4, model.AlexNet,
	}
	run := func(par int) *Result {
		opts := core.DefaultOptions()
		opts.Parallelism = par
		pl, err := core.NewPlanner(soc.Kirin990(), opts)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(pl, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(streamOf(t, 15*time.Millisecond, names...), pipeline.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		if got.Makespan != seq.Makespan || got.Windows != seq.Windows {
			t.Fatalf("parallelism %d: makespan %v windows %d, sequential %v/%d",
				par, got.Makespan, got.Windows, seq.Makespan, seq.Windows)
		}
		for i := range seq.Completions {
			if got.Completions[i] != seq.Completions[i] {
				t.Fatalf("parallelism %d: completion %d = %v, sequential %v",
					par, i, got.Completions[i], seq.Completions[i])
			}
		}
	}
}

// TestWindowedBeatsSerialQueueing: under bursty arrivals, the windowed
// heterogeneous planner yields lower mean sojourn than serial big-CPU
// processing of the same stream — the Fig. 2(a) story in the online
// setting.
func TestWindowedBeatsSerialQueueing(t *testing.T) {
	names := []string{
		model.ResNet50, model.SqueezeNet, model.InceptionV4, model.MobileNetV2,
		model.GoogLeNet, model.AlexNet, model.SqueezeNet, model.MobileNetV2,
	}
	reqs := streamOf(t, 10*time.Millisecond, names...)
	s := newScheduler(t, DefaultConfig())
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: FIFO on the big CPU.
	platform := soc.Kirin990()
	big := platform.Processor("cpu-big")
	now := time.Duration(0)
	var serialSojourn time.Duration
	for _, rq := range reqs {
		if rq.Arrival > now {
			now = rq.Arrival
		}
		now += soc.BatchLatency(big, rq.Model, 1)
		serialSojourn += now - rq.Arrival
	}
	serialMean := serialSojourn / time.Duration(len(reqs))
	if res.MeanSojourn() >= serialMean {
		t.Errorf("windowed mean sojourn %v not below serial %v", res.MeanSojourn(), serialMean)
	}
}

// TestMG1CrossCheck validates the stream simulator's FIFO queueing against
// the Pollaczek–Khinchine M/G/1 mean-waiting-time formula: a single-model
// Poisson stream processed one request per window (MaxWindow 1) is exactly
// an M/D/1 queue whose service time is the planned single-request latency.
// The simulated mean sojourn must land near W = ρ·S/(2(1−ρ)) + S.
func TestMG1CrossCheck(t *testing.T) {
	platform := soc.Kirin990()
	pl, err := core.NewPlanner(platform, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxWindow = 1
	cfg.MaxBatch = 1
	sched, err := NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic service time: plan one request once and reuse it.
	probe, err := pl.PlanModels([]*model.Model{model.MustByName(model.ResNet50)})
	if err != nil {
		t.Fatal(err)
	}
	probeRes, err := pipeline.Execute(probe.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	service := probeRes.Makespan.Seconds()

	const n = 400
	models := make([]*model.Model, n)
	for i := range models {
		models[i] = model.MustByName(model.ResNet50)
	}
	meanGap := time.Duration(2 * service * float64(time.Second)) // ρ = 0.5
	requests := PoissonArrivals(models, meanGap, 99)
	res, err := sched.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rho := service / meanGap.Seconds()
	analytic := rho*service/(2*(1-rho)) + service // M/D/1 sojourn
	got := res.MeanSojourn().Seconds()
	// Finite-sample Poisson noise: accept a generous band around the
	// analytic value.
	if got < analytic*0.6 || got > analytic*1.6 {
		t.Errorf("mean sojourn %.4fs vs M/D/1 analytic %.4fs (ρ=%.2f, S=%.4fs)",
			got, analytic, rho, service)
	}
}
