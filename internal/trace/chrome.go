package trace

import (
	"encoding/json"
	"fmt"

	"hetero2pipe/internal/pipeline"
)

// Chrome trace-event export: the executed timeline rendered as a
// chrome://tracing / Perfetto-compatible JSON document, one track per
// processor, one complete ("X") event per executed slice. Load the output
// in any trace viewer to inspect pipeline fill, bubbles and slowdown.

// chromeEvent is one entry of the trace-event JSON array.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	// TsMicros and DurMicros are in microseconds per the trace format.
	TsMicros  float64           `json:"ts"`
	DurMicros float64           `json:"dur,omitempty"`
	PID       int               `json:"pid"`
	TID       int               `json:"tid"`
	Args      map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders an executed schedule as trace-event JSON. Track IDs
// (tid) follow the SoC's processor order; event names are the request's
// model names.
func ChromeTrace(sched *pipeline.Schedule, res *pipeline.Result) ([]byte, error) {
	if sched == nil || res == nil {
		return nil, fmt.Errorf("trace: nil schedule or result")
	}
	events := make([]chromeEvent, 0, len(res.Timeline)+sched.NumStages())
	for k := 0; k < sched.NumStages(); k++ {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   k,
			Args:  map[string]string{"name": sched.SoC.Processors[k].ID},
		})
	}
	for _, e := range res.Timeline {
		m := sched.Profiles[e.Request].Model()
		r := sched.Stages[e.Request][e.Stage]
		events = append(events, chromeEvent{
			Name:      m.Name,
			Phase:     "X",
			TsMicros:  float64(e.Start.Microseconds()),
			DurMicros: float64((e.End - e.Start).Microseconds()),
			PID:       1,
			TID:       e.Stage,
			Args: map[string]string{
				"request":  fmt.Sprintf("%d", e.Request),
				"layers":   fmt.Sprintf("[%d,%d]", r.From, r.To),
				"slowdown": fmt.Sprintf("%.3f", e.Slowdown),
			},
		})
	}
	return json.MarshalIndent(events, "", "  ")
}
