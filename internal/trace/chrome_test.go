package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func TestChromeTrace(t *testing.T) {
	s := soc.Kirin990()
	models, err := workload.Instantiate(workload.SceneUnderstanding())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := ChromeTrace(plan.Schedule, res)
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace output not valid JSON: %v", err)
	}
	// One metadata event per stage plus one X event per executed slice.
	meta, exec := 0, 0
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			exec++
			if e["dur"].(float64) <= 0 {
				t.Error("X event with non-positive duration")
			}
			args := e["args"].(map[string]any)
			for _, key := range []string{"request", "layers", "slowdown"} {
				if _, ok := args[key]; !ok {
					t.Errorf("X event missing arg %q", key)
				}
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if meta != s.NumProcessors() {
		t.Errorf("%d metadata events, want %d", meta, s.NumProcessors())
	}
	if exec != len(res.Timeline) {
		t.Errorf("%d X events, want %d", exec, len(res.Timeline))
	}
}

func TestChromeTraceNil(t *testing.T) {
	if _, err := ChromeTrace(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestHTMLReport(t *testing.T) {
	s := soc.Kirin990()
	models, err := workload.Instantiate([]string{"ResNet50", "BERT"})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	page, err := HTMLReport("demo <run>", plan.Schedule, res)
	if err != nil {
		t.Fatalf("HTMLReport: %v", err)
	}
	doc := string(page)
	for _, want := range []string{
		"<!DOCTYPE html>", "<svg", "</svg>", "demo &lt;run&gt;", // escaping
		"cpu-big", "ResNet50", "BERT", "inf/s",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// One rect per timeline slice plus one background per lane.
	rects := strings.Count(doc, "<rect")
	if want := len(res.Timeline) + s.NumProcessors(); rects != want {
		t.Errorf("%d rects, want %d", rects, want)
	}
	if _, err := HTMLReport("x", nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}
