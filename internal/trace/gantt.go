package trace

import (
	"fmt"
	"strings"
	"time"

	"hetero2pipe/internal/pipeline"
)

// ASCII Gantt rendering of an executed schedule: one row per processor, one
// glyph column per time bucket, request indices as glyphs. Bubbles show as
// dots — the visual the paper's Fig. 4 sketches.

// ganttGlyphs indexes request numbers to printable glyphs (wraps beyond 36).
const ganttGlyphs = "0123456789abcdefghijklmnopqrstuvwxyz"

// Gantt renders the timeline with the given character width.
func Gantt(sched *pipeline.Schedule, res *pipeline.Result, width int) string {
	if sched == nil || res == nil || res.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	if width < 20 {
		width = 20
	}
	bucket := res.Makespan / time.Duration(width)
	if bucket <= 0 {
		bucket = time.Nanosecond
	}
	rows := make([][]byte, sched.NumStages())
	for k := range rows {
		rows[k] = []byte(strings.Repeat(".", width))
	}
	for _, e := range res.Timeline {
		glyph := ganttGlyphs[e.Request%len(ganttGlyphs)]
		from := int(e.Start / bucket)
		to := int(e.End / bucket)
		if to >= width {
			to = width - 1
		}
		for c := from; c <= to; c++ {
			rows[e.Stage][c] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (one column ≈ %v, %d requests):\n", bucket.Round(time.Microsecond), sched.NumRequests())
	for k, row := range rows {
		fmt.Fprintf(&b, "%-10s |%s|\n", sched.SoC.Processors[k].ID, row)
	}
	return b.String()
}
