package trace

import (
	"strings"
	"testing"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func TestGantt(t *testing.T) {
	s := soc.Kirin990()
	models, err := workload.Instantiate([]string{"ResNet50", "SqueezeNet", "BERT"})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanModels(models)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Execute(plan.Schedule, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(plan.Schedule, res, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+s.NumProcessors() {
		t.Fatalf("gantt has %d lines, want %d:\n%s", len(lines), 1+s.NumProcessors(), out)
	}
	for _, id := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		if !strings.Contains(out, id) {
			t.Errorf("gantt missing processor row %q", id)
		}
	}
	// Request glyphs appear (short slices can be overpainted by longer
	// ones sharing a bucket, so require most, not all).
	present := 0
	for r := 0; r < len(models); r++ {
		if strings.ContainsRune(out, rune(ganttGlyphs[r])) {
			present++
		}
	}
	if present < len(models)-1 {
		t.Errorf("only %d of %d request glyphs visible:\n%s", present, len(models), out)
	}
	// Row bodies have the requested width.
	body := lines[1][strings.Index(lines[1], "|")+1:]
	body = body[:strings.Index(body, "|")]
	if len(body) != 60 {
		t.Errorf("row width %d, want 60", len(body))
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := Gantt(nil, nil, 40); !strings.Contains(got, "empty") {
		t.Errorf("nil gantt = %q", got)
	}
	if got := Gantt(&pipeline.Schedule{SoC: soc.Kirin990()}, &pipeline.Result{}, 40); !strings.Contains(got, "empty") {
		t.Errorf("zero-makespan gantt = %q", got)
	}
}
