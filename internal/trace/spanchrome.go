package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"hetero2pipe/internal/obs"
)

// Span-sourced Chrome-trace export: the same stream-run trace StreamChrome
// renders from WindowTraces, reconstructed purely from the span ring — so a
// run traced with a SpanRecorder but without CollectWindowTraces still
// yields the full Chrome timeline, and both exports come from one source of
// truth (the converter is pinned byte-identical to StreamChrome by test).
//
// The reconstruction walks the span tree the instrumented runtime emits:
// one stream_run root (procs attr = comma-joined processor IDs), window
// spans beneath it (window, vt_start, vt_end, interrupted, interrupt_at
// attrs), one execute span per window, and slice spans beneath that
// (request, stage, model, layers_from/to, slowdown and window-relative
// vt_start/vt_end attrs). Request completions are recovered as the maximum
// slice vt_end per request, which matches pipeline.Result.Completions
// because the executor finishes a request exactly when its last slice ends.

// spanSlice is one executor slice recovered from a slice span.
type spanSlice struct {
	request, stage int
	model          string
	from, to       int
	slowdown       float64
	start, end     time.Duration // window-relative virtual times
}

// spanWindow is one planning window recovered from a window span.
type spanWindow struct {
	idx         int
	start       time.Duration
	interrupted bool
	interruptAt time.Duration
	slices      []spanSlice
}

// StreamChromeFromSpans renders a traced stream run as trace-event JSON,
// byte-identical to StreamChrome over the same run. Spans from the most
// recent stream_run root in the slice are used; spans of other runs sharing
// the recorder are ignored.
func StreamChromeFromSpans(spans []obs.SpanData) ([]byte, error) {
	// The recorder snapshot is oldest-first: the last stream_run root is the
	// most recent run.
	var root *obs.SpanData
	for i := range spans {
		if spans[i].Name == "stream_run" && spans[i].Parent == 0 {
			root = &spans[i]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("trace: no stream_run span (run with a SpanRecorder armed)")
	}
	procsAttr, ok := root.Attr("procs")
	if !ok {
		return nil, fmt.Errorf("trace: stream_run span missing procs attribute")
	}
	procs := strings.Split(procsAttr.AsString(), ",")

	// First pass: window spans under the root, and the execute→window
	// parent mapping slice spans hang off.
	windows := map[uint64]*spanWindow{} // window span id → window
	execOf := map[uint64]uint64{}       // execute span id → window span id
	for i := range spans {
		s := &spans[i]
		switch s.Name {
		case "window":
			if s.Parent != root.ID {
				continue
			}
			w := &spanWindow{interruptAt: -1}
			if a, ok := s.Attr("window"); ok {
				w.idx = int(a.AsInt())
			}
			if a, ok := s.Attr("vt_start"); ok {
				w.start = a.AsDuration()
			}
			if a, ok := s.Attr("interrupted"); ok {
				w.interrupted = a.AsInt() != 0
			}
			if a, ok := s.Attr("interrupt_at"); ok {
				w.interruptAt = a.AsDuration()
			}
			windows[s.ID] = w
		}
	}
	for i := range spans {
		s := &spans[i]
		if s.Name != "execute" {
			continue
		}
		if _, ok := windows[s.Parent]; ok {
			execOf[s.ID] = s.Parent
		}
	}
	for i := range spans {
		s := &spans[i]
		if s.Name != "slice" {
			continue
		}
		wid, ok := execOf[s.Parent]
		if !ok {
			continue
		}
		w := windows[wid]
		sl := spanSlice{}
		if a, ok := s.Attr("request"); ok {
			sl.request = int(a.AsInt())
		}
		if a, ok := s.Attr("stage"); ok {
			sl.stage = int(a.AsInt())
		}
		if a, ok := s.Attr("model"); ok {
			sl.model = a.AsString()
		}
		if a, ok := s.Attr("layers_from"); ok {
			sl.from = int(a.AsInt())
		}
		if a, ok := s.Attr("layers_to"); ok {
			sl.to = int(a.AsInt())
		}
		if a, ok := s.Attr("slowdown"); ok {
			sl.slowdown = a.AsFloat()
		}
		if a, ok := s.Attr("vt_start"); ok {
			sl.start = a.AsDuration()
		}
		if a, ok := s.Attr("vt_end"); ok {
			sl.end = a.AsDuration()
		}
		w.slices = append(w.slices, sl)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("trace: stream_run span has no window spans")
	}

	ordered := make([]*spanWindow, 0, len(windows))
	for _, w := range windows {
		ordered = append(ordered, w)
	}
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].idx < ordered[b].idx })

	events := make([]chromeEvent, 0, len(ordered)*8)
	for k, id := range procs {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   k,
			Args:  map[string]string{"name": id},
		})
	}

	for _, w := range ordered {
		// The executor sorts its timeline by (start, stage); slice spans are
		// recorded in completion order, so re-sort. The key is unique: a
		// processor runs one slice at a time.
		sort.Slice(w.slices, func(a, b int) bool {
			if w.slices[a].start != w.slices[b].start {
				return w.slices[a].start < w.slices[b].start
			}
			return w.slices[a].stage < w.slices[b].stage
		})
		// completions[r] = the request's last slice end, window-relative.
		completions := map[int]time.Duration{}
		for _, sl := range w.slices {
			if sl.end > completions[sl.request] {
				completions[sl.request] = sl.end
			}
		}
		committed := func(r int) bool {
			if !w.interrupted {
				return true
			}
			return w.start+completions[r] <= w.interruptAt
		}
		for _, sl := range w.slices {
			start := w.start + sl.start
			end := w.start + sl.end
			name := sl.model
			status := "completed"
			if !committed(sl.request) {
				status = "discarded"
				name += " (discarded)"
				if start >= w.interruptAt {
					continue
				}
				if end > w.interruptAt {
					end = w.interruptAt
				}
			}
			events = append(events, chromeEvent{
				Name:      name,
				Phase:     "X",
				TsMicros:  micros(start),
				DurMicros: micros(end - start),
				PID:       1,
				TID:       sl.stage,
				Args: map[string]string{
					"window":   fmt.Sprintf("%d", w.idx),
					"request":  fmt.Sprintf("%d", sl.request),
					"layers":   fmt.Sprintf("[%d,%d]", sl.from, sl.to),
					"slowdown": fmt.Sprintf("%.3f", sl.slowdown),
					"status":   status,
				},
			})
		}
		if w.interrupted {
			for k := range procs {
				events = append(events, chromeEvent{
					Name:     "interrupt",
					Phase:    "i",
					TsMicros: micros(w.interruptAt),
					PID:      1,
					TID:      k,
					Args:     map[string]string{"window": fmt.Sprintf("%d", w.idx)},
				})
			}
		}
	}
	return json.MarshalIndent(events, "", "  ")
}
