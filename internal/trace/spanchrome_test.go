package trace

import (
	"bytes"
	"context"
	"testing"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/workload"
)

// tracedStreamRun executes one stream run with both trace sources armed —
// collected WindowTraces for StreamChrome and a span recorder for
// StreamChromeFromSpans — so the two exports describe the same run.
func tracedStreamRun(t *testing.T, events []soc.Event) (*stream.Result, *obs.SpanRecorder) {
	t.Helper()
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]stream.Request, len(models))
	for i, m := range models {
		reqs[i] = stream.Request{Model: m}
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.CollectWindowTraces = true
	cfg.Events = events
	s, err := stream.NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder(0)
	ctx := obs.ContextWithRecorder(context.Background(), rec)
	res, err := s.RunContext(ctx, reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestSpanChromeMatchesStreamChrome pins the acceptance criterion: the
// Chrome trace reconstructed from the span ring is byte-identical to the
// one StreamChrome renders from collected WindowTraces of the same run.
func TestSpanChromeMatchesStreamChrome(t *testing.T) {
	res, rec := tracedStreamRun(t, nil)
	want, err := StreamChrome(res.WindowTraces)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamChromeFromSpans(rec.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("span-sourced trace differs from WindowTrace-sourced trace:\nspans:\n%s\nwindows:\n%s",
			clip(got), clip(want))
	}
}

// TestSpanChromeMatchesStreamChromeInterrupted repeats the equality check
// on a degraded run whose first window is interrupted, exercising the
// discarded-segment clipping and the per-track interrupt instants.
func TestSpanChromeMatchesStreamChromeInterrupted(t *testing.T) {
	base, _ := tracedStreamRun(t, nil)
	events := []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: base.WindowStats[0].End / 3},
	}
	res, rec := tracedStreamRun(t, events)
	if res.Replans == 0 {
		t.Fatal("degraded scenario produced no interrupts; the test exercises nothing")
	}
	want, err := StreamChrome(res.WindowTraces)
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamChromeFromSpans(rec.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("span-sourced trace differs on interrupted run:\nspans:\n%s\nwindows:\n%s",
			clip(got), clip(want))
	}
}

// TestSpanTreeStructure pins the span hierarchy the converter (and any
// OTLP consumer) relies on: every slice span is the child of an execute
// span, every execute span the child of exactly one window span, and
// every window span the child of the single stream_run root — so each
// slice descends from exactly one window.
func TestSpanTreeStructure(t *testing.T) {
	res, rec := tracedStreamRun(t, nil)
	spans := rec.Spans()
	byID := make(map[uint64]obs.SpanData, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	var rootID uint64
	windows := 0
	for _, s := range spans {
		switch s.Name {
		case "stream_run":
			if s.Parent != 0 {
				t.Errorf("stream_run span %d has parent %d, want root", s.ID, s.Parent)
			}
			if rootID != 0 {
				t.Fatalf("more than one stream_run span in a single-run recorder")
			}
			rootID = s.ID
		case "window":
			windows++
		}
	}
	if rootID == 0 {
		t.Fatal("no stream_run root span recorded")
	}
	if windows != res.Windows {
		t.Errorf("recorded %d window spans, result has %d windows", windows, res.Windows)
	}
	slices := 0
	for _, s := range spans {
		if s.Name != "slice" {
			continue
		}
		slices++
		exec, ok := byID[s.Parent]
		if !ok || exec.Name != "execute" {
			t.Fatalf("slice span %d: parent %d is %q, want an execute span", s.ID, s.Parent, exec.Name)
		}
		win, ok := byID[exec.Parent]
		if !ok || win.Name != "window" {
			t.Fatalf("slice span %d: grandparent %d is %q, want a window span", s.ID, exec.Parent, win.Name)
		}
		if win.Parent != rootID {
			t.Errorf("window span %d hangs off %d, want the stream_run root %d", win.ID, win.Parent, rootID)
		}
	}
	totalSlices := 0
	for _, wt := range res.WindowTraces {
		totalSlices += len(wt.Exec.Timeline)
	}
	if slices != totalSlices {
		t.Errorf("recorded %d slice spans, executed timelines hold %d slices", slices, totalSlices)
	}
}

// clip bounds failure output.
func clip(b []byte) []byte {
	if len(b) > 2000 {
		return append(append([]byte(nil), b[:2000]...), []byte("...")...)
	}
	return b
}
