package trace

import (
	"encoding/json"
	"fmt"
	"time"

	"hetero2pipe/internal/stream"
)

// Stream-run Chrome-trace export: every executed planning window rendered
// on absolute virtual time, one track per processor. Interrupted windows
// appear as distinct segments — committed slices carry the window index and
// status "completed", while work discarded at the interrupt is clipped to
// the interrupt instant, renamed with a "(discarded)" suffix and marked
// status "discarded", so a replanned window is visually separate from the
// aborted attempt it replaces. Each interrupt additionally emits an instant
// ("i") event on every track at the cut point.

// StreamChrome renders the window traces of a stream run (collected under
// stream.Config.CollectWindowTraces) as trace-event JSON.
func StreamChrome(windows []stream.WindowTrace) ([]byte, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("trace: no window traces (run with CollectWindowTraces)")
	}
	soc := windows[0].Schedule.SoC
	events := make([]chromeEvent, 0, len(windows)*8)
	for k := 0; k < soc.NumProcessors(); k++ {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   k,
			Args:  map[string]string{"name": soc.Processors[k].ID},
		})
	}

	for _, w := range windows {
		// committed[r] reports whether request r's completion stood: in an
		// uninterrupted window everything commits; in an interrupted one
		// only requests finishing at or before the cut.
		committed := func(r int) bool {
			if !w.Interrupted {
				return true
			}
			return w.Start+w.Exec.Completions[r] <= w.InterruptAt
		}
		for _, e := range w.Exec.Timeline {
			start := w.Start + e.Start
			end := w.Start + e.End
			m := w.Schedule.Profiles[e.Request].Model()
			name := m.Name
			status := "completed"
			if !committed(e.Request) {
				status = "discarded"
				name += " (discarded)"
				// Clip discarded work to the interrupt: nothing past the cut
				// ever ran on the (virtual) hardware.
				if start >= w.InterruptAt {
					continue
				}
				if end > w.InterruptAt {
					end = w.InterruptAt
				}
			}
			r := w.Schedule.Stages[e.Request][e.Stage]
			events = append(events, chromeEvent{
				Name:      name,
				Phase:     "X",
				TsMicros:  micros(start),
				DurMicros: micros(end - start),
				PID:       1,
				TID:       e.Stage,
				Args: map[string]string{
					"window":   fmt.Sprintf("%d", w.Window),
					"request":  fmt.Sprintf("%d", e.Request),
					"layers":   fmt.Sprintf("[%d,%d]", r.From, r.To),
					"slowdown": fmt.Sprintf("%.3f", e.Slowdown),
					"status":   status,
				},
			})
		}
		if w.Interrupted {
			for k := 0; k < soc.NumProcessors(); k++ {
				events = append(events, chromeEvent{
					Name:     "interrupt",
					Phase:    "i",
					TsMicros: micros(w.InterruptAt),
					PID:      1,
					TID:      k,
					Args:     map[string]string{"window": fmt.Sprintf("%d", w.Window)},
				})
			}
		}
	}
	return json.MarshalIndent(events, "", "  ")
}

// micros converts a duration to fractional microseconds, the trace format's
// time unit. Fractional precision keeps sub-microsecond slices visible.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
