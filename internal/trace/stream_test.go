package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/workload"
)

// interruptedStreamRun produces a run with at least one interrupted and one
// completed window, traces collected.
func interruptedStreamRun(t *testing.T) *stream.Result {
	t.Helper()
	names := []string{
		model.ResNet50, model.GoogLeNet, model.BERT,
		model.ResNet50, model.GoogLeNet, model.BERT,
	}
	models, err := workload.Instantiate(names)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]stream.Request, len(models))
	for i, m := range models {
		reqs[i] = stream.Request{Model: m}
	}
	run := func(cfg stream.Config) *stream.Result {
		pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s, err := stream.NewScheduler(pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(reqs, pipeline.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cfg := stream.DefaultConfig()
	cfg.CollectWindowTraces = true
	base := run(cfg)
	cfg.Events = []soc.Event{
		{Kind: soc.EventProcessorOffline, Processor: "npu", At: base.WindowStats[0].End / 3},
	}
	res := run(cfg)
	if res.Replans == 0 {
		t.Fatal("scenario produced no interrupted window")
	}
	return res
}

// chromeEventView mirrors the emitted JSON shape for assertions.
type chromeEventView struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	Ts    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

func TestObsStreamChrome(t *testing.T) {
	res := interruptedStreamRun(t)
	raw, err := StreamChrome(res.WindowTraces)
	if err != nil {
		t.Fatal(err)
	}
	var events []chromeEventView
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("output is not valid trace-event JSON: %v", err)
	}

	var meta, slices, discarded, instants int
	windowsSeen := map[string]bool{}
	var interruptUS float64
	for _, wt := range res.WindowTraces {
		if wt.Interrupted {
			interruptUS = float64(wt.InterruptAt.Nanoseconds()) / 1e3
			break
		}
	}
	for _, e := range events {
		switch e.Phase {
		case "M":
			meta++
		case "i":
			instants++
			if e.Ts != interruptUS {
				t.Errorf("instant event at %v µs, want interrupt at %v µs", e.Ts, interruptUS)
			}
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative duration slice %+v", e)
			}
			windowsSeen[e.Args["window"]] = true
			if e.Args["status"] == "discarded" {
				discarded++
				if !strings.HasSuffix(e.Name, "(discarded)") {
					t.Errorf("discarded slice not suffixed: %q", e.Name)
				}
				if e.Ts+e.Dur > interruptUS+0.001 {
					t.Errorf("discarded slice extends past interrupt: ends %v > %v", e.Ts+e.Dur, interruptUS)
				}
			}
		default:
			t.Errorf("unexpected phase %q", e.Phase)
		}
	}
	if meta != soc.Kirin990().NumProcessors() {
		t.Errorf("thread_name metadata events = %d, want %d", meta, soc.Kirin990().NumProcessors())
	}
	if slices == 0 {
		t.Fatal("no slice events emitted")
	}
	if discarded == 0 {
		t.Error("interrupted run emitted no discarded segments")
	}
	if instants == 0 {
		t.Error("no interrupt instant events emitted")
	}
	// Interrupted windows must render as distinct track segments: slices
	// tagged with more than one window index.
	if len(windowsSeen) < 2 {
		t.Errorf("slices span %d window(s), want ≥ 2 (replanned window separate)", len(windowsSeen))
	}
}

func TestObsStreamChromeEmpty(t *testing.T) {
	if _, err := StreamChrome(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestObsStreamChromeUninterrupted: a clean run emits only completed
// segments and no instants.
func TestObsStreamChromeUninterrupted(t *testing.T) {
	models, err := workload.Instantiate([]string{model.ResNet50, model.SqueezeNet})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]stream.Request, len(models))
	for i, m := range models {
		reqs[i] = stream.Request{Model: m, Arrival: time.Duration(i) * time.Millisecond}
	}
	pl, err := core.NewPlanner(soc.Kirin990(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.CollectWindowTraces = true
	s, err := stream.NewScheduler(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(reqs, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := StreamChrome(res.WindowTraces)
	if err != nil {
		t.Fatal(err)
	}
	var events []chromeEventView
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Phase == "i" {
			t.Errorf("uninterrupted run emitted instant event %+v", e)
		}
		if e.Args["status"] == "discarded" {
			t.Errorf("uninterrupted run emitted discarded slice %+v", e)
		}
	}
}
