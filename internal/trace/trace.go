// Package trace models the DVFS memory-frequency governor and converts the
// executor's memory samples into the Fig. 9 traces: memory-controller
// frequency (throttled to the maximum once CPU/GPU co-execution demands full
// bandwidth) and available memory (capacity minus resident inference state).
package trace

import (
	"time"

	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
)

// governorHeadroom is the utilisation target of the DVFS governor: it picks
// the lowest level keeping bandwidth utilisation under 1/governorHeadroom,
// mirroring vendor latency-boost governors (e.g. memlat) that scale up
// aggressively once backend-stall counters fire under multi-agent access.
const governorHeadroom = 5.0

// FrequencyFor returns the memory-controller frequency (MHz) the governor
// selects for an instantaneous bus demand: the lowest DVFS level whose
// proportional bandwidth covers the demand with headroom, or the maximum
// level when demand exceeds every step — the "running at the maximum state"
// behaviour Fig. 9 shows once the CPU/GPU join the pipeline.
func FrequencyFor(s *soc.SoC, demandGBps float64) int {
	levels := s.MemFreqLevelsMHz
	if len(levels) == 0 {
		return 0
	}
	maxFreq := levels[len(levels)-1]
	for _, f := range levels {
		bw := s.BusBandwidthGBps * float64(f) / float64(maxFreq)
		if bw >= demandGBps*governorHeadroom {
			return f
		}
	}
	return maxFreq
}

// Point is one sample of the Fig. 9 trace.
type Point struct {
	// At is the virtual timestamp.
	At time.Duration
	// FreqMHz is the governor-selected memory frequency.
	FreqMHz int
	// AvailableBytes is capacity minus resident inference memory.
	AvailableBytes int64
	// DemandGBps is the instantaneous bus demand.
	DemandGBps float64
}

// FromResult converts an executed schedule's memory samples into trace
// points. Baseline available memory is the SoC capacity (the paper's
// ~2.5 GB initially-available figure).
func FromResult(s *soc.SoC, res *pipeline.Result) []Point {
	out := make([]Point, 0, len(res.MemTrace))
	for _, m := range res.MemTrace {
		avail := s.MemoryCapacityBytes - m.UsedBytes
		if avail < 0 {
			avail = 0
		}
		out = append(out, Point{
			At:             m.At,
			FreqMHz:        FrequencyFor(s, m.DemandGBps),
			AvailableBytes: avail,
			DemandGBps:     m.DemandGBps,
		})
	}
	return out
}

// MinAvailable returns the lowest available-memory point, the number
// Fig. 9's discussion tracks ("brings the available memory down to
// 500 MB").
func MinAvailable(points []Point) int64 {
	if len(points) == 0 {
		return 0
	}
	min := points[0].AvailableBytes
	for _, p := range points[1:] {
		if p.AvailableBytes < min {
			min = p.AvailableBytes
		}
	}
	return min
}

// MaxFrequency returns the highest governor frequency reached.
func MaxFrequency(points []Point) int {
	max := 0
	for _, p := range points {
		if p.FreqMHz > max {
			max = p.FreqMHz
		}
	}
	return max
}
