package trace

import (
	"testing"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/workload"
)

func TestFrequencyForLevels(t *testing.T) {
	s := soc.Kirin990()
	levels := s.MemFreqLevelsMHz
	if got := FrequencyFor(s, 0); got != levels[0] {
		t.Errorf("zero demand → %d MHz, want lowest %d", got, levels[0])
	}
	max := levels[len(levels)-1]
	if got := FrequencyFor(s, s.BusBandwidthGBps*2); got != max {
		t.Errorf("over-demand → %d MHz, want max %d", got, max)
	}
	// Monotone in demand.
	prev := 0
	for d := 0.0; d <= s.BusBandwidthGBps; d += 0.5 {
		f := FrequencyFor(s, d)
		if f < prev {
			t.Fatalf("frequency not monotone at demand %.1f", d)
		}
		prev = f
	}
	empty := &soc.SoC{}
	if got := FrequencyFor(empty, 1); got != 0 {
		t.Errorf("no levels → %d, want 0", got)
	}
}

// TestFig9Shape: single-stage NPU execution stays below max memory
// frequency, while a multi-stage CPU/GPU pipeline throttles it to the
// maximum and visibly depletes available memory — the Fig. 9 story.
func TestFig9Shape(t *testing.T) {
	s := soc.Kirin990()
	pl, err := core.NewPlanner(s, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tiers := workload.MemoryTiers()
	var maxFreqs []int
	var minAvail []int64
	for _, names := range tiers {
		models, err := workload.Instantiate(names)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := pl.PlanModels(models)
		if err != nil {
			t.Fatal(err)
		}
		opts := pipeline.DefaultOptions()
		opts.SampleMemory = true
		res, err := pipeline.Execute(plan.Schedule, opts)
		if err != nil {
			t.Fatal(err)
		}
		points := FromResult(s, res)
		if len(points) == 0 {
			t.Fatalf("tier %v produced no trace", names)
		}
		maxFreqs = append(maxFreqs, MaxFrequency(points))
		minAvail = append(minAvail, MinAvailable(points))
	}
	// Deeper pipelines never lower the peak frequency and never increase
	// the memory floor.
	for i := 1; i < len(maxFreqs); i++ {
		if maxFreqs[i] < maxFreqs[i-1] {
			t.Errorf("tier %d peak freq %d below tier %d's %d", i, maxFreqs[i], i-1, maxFreqs[i-1])
		}
		if minAvail[i] > minAvail[i-1] {
			t.Errorf("tier %d memory floor %d above tier %d's %d", i, minAvail[i], i-1, minAvail[i-1])
		}
	}
	// The 3-stage pipeline must consume a visible chunk of memory.
	if minAvail[2] >= s.MemoryCapacityBytes {
		t.Error("3-stage pipeline consumed no memory")
	}
}

func TestFromResultClampsAvailable(t *testing.T) {
	s := soc.Kirin990()
	res := &pipeline.Result{MemTrace: []pipeline.MemSample{
		{At: time.Second, UsedBytes: s.MemoryCapacityBytes * 2, DemandGBps: 1},
	}}
	points := FromResult(s, res)
	if points[0].AvailableBytes != 0 {
		t.Errorf("available = %d, want clamp to 0", points[0].AvailableBytes)
	}
}

func TestAggregatesEmpty(t *testing.T) {
	if MinAvailable(nil) != 0 {
		t.Error("MinAvailable(nil) != 0")
	}
	if MaxFrequency(nil) != 0 {
		t.Error("MaxFrequency(nil) != 0")
	}
}

var _ = model.Names // keep import for helper extensions
