// Package workload generates the multi-DNN request streams of the paper's
// evaluation: seeded random model combinations (the "100 random model
// combinations" of Fig. 7/8) and the application-shaped mixes used by the
// examples. All generation is deterministic under an explicit seed.
package workload

import (
	"fmt"
	"math/rand"

	"hetero2pipe/internal/model"
)

// Generator produces random model combinations from the zoo.
type Generator struct {
	rng      *rand.Rand
	names    []string
	min, max int
}

// NewGenerator returns a generator drawing combinations of size
// [minModels, maxModels] (with replacement) from the full zoo.
func NewGenerator(seed int64, minModels, maxModels int) (*Generator, error) {
	if minModels < 1 || maxModels < minModels {
		return nil, fmt.Errorf("workload: invalid size range [%d, %d]", minModels, maxModels)
	}
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		names: model.Names(),
		min:   minModels,
		max:   maxModels,
	}, nil
}

// Next returns one random combination of model names.
func (g *Generator) Next() []string {
	size := g.min + g.rng.Intn(g.max-g.min+1)
	combo := make([]string, size)
	for i := range combo {
		combo[i] = g.names[g.rng.Intn(len(g.names))]
	}
	return combo
}

// Combos returns n combinations.
func (g *Generator) Combos(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Instantiate resolves a combination's names to the shared zoo instances.
// The returned models are cached and immutable — Clone before mutating.
func Instantiate(names []string) ([]*model.Model, error) {
	out := make([]*model.Model, len(names))
	for i, n := range names {
		m, err := model.ByName(n)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		out[i] = m
	}
	return out, nil
}

// SceneUnderstanding returns the paper's motivating application mix
// (Sec. I): "YOLO for robust object detection, FaceNet, Age/GenderNet for
// facial, age and gender recognition and ViT-GPT2 for scene-to-text
// captioning" — the captioner contributing its ViT encoder and GPT-2
// decoder as two pipeline requests.
func SceneUnderstanding() []string {
	return []string{
		model.YOLOv4,       // object detection
		model.FaceNet,      // face embedding
		model.AgeGenderNet, // age/gender recognition
		model.ViT,          // caption encoder
		model.GPT2Decoder,  // caption decoder
	}
}

// VideoAnalytics returns a lightweight continuous-classification stream
// (Appendix D's batching scenario): many small models with one heavy
// anchor.
func VideoAnalytics(frames int) []string {
	out := make([]string, 0, frames+1)
	out = append(out, model.BERT)
	for i := 0; i < frames; i++ {
		if i%2 == 0 {
			out = append(out, model.MobileNetV2)
		} else {
			out = append(out, model.SqueezeNet)
		}
	}
	return out
}

// MemoryTiers returns the Fig. 9 pipelines: 1-, 2- and 3-stage request
// streams built from the footprint tiers (large >300 MB, medium 100–300 MB,
// light <100 MB). Each tier's mix repeats so the pipeline fills and the
// stages genuinely co-reside — the condition Fig. 9's traces capture.
func MemoryTiers() [][]string {
	heavy, medium, light := model.HeavyNames(), model.MediumNames(), model.LightweightNames()
	repeat := func(names []string, times int) []string {
		out := make([]string, 0, len(names)*times)
		for i := 0; i < times; i++ {
			out = append(out, names...)
		}
		return out
	}
	return [][]string{
		repeat([]string{heavy[0]}, 2),
		repeat([]string{heavy[0], heavy[1], medium[0]}, 2),
		repeat([]string{heavy[0], heavy[1], heavy[2], medium[0], light[0]}, 2),
	}
}
