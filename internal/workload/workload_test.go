package workload

import (
	"testing"

	"hetero2pipe/internal/model"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(7, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(7, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Combos(20), g2.Combos(20)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("combo %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("combo %d differs at %d: %s vs %s", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestGeneratorSizesInRange(t *testing.T) {
	g, err := NewGenerator(3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, combo := range g.Combos(200) {
		if len(combo) < 2 || len(combo) > 5 {
			t.Fatalf("combo size %d outside [2,5]", len(combo))
		}
		for _, name := range combo {
			if _, err := model.ByName(name); err != nil {
				t.Fatalf("combo contains unknown model %q", name)
			}
		}
	}
}

func TestGeneratorDiverse(t *testing.T) {
	g, err := NewGenerator(1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, combo := range g.Combos(100) {
		for _, n := range combo {
			seen[n] = true
		}
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct models drawn across 100 combos", len(seen))
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1, 0, 4); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewGenerator(1, 5, 4); err == nil {
		t.Error("max < min accepted")
	}
}

func TestInstantiate(t *testing.T) {
	models, err := Instantiate([]string{model.BERT, model.ViT})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name != model.BERT {
		t.Fatalf("instantiated %v", models)
	}
	if _, err := Instantiate([]string{"nope"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestApplicationMixes(t *testing.T) {
	if got := SceneUnderstanding(); len(got) != 5 {
		t.Errorf("SceneUnderstanding size %d", len(got))
	}
	va := VideoAnalytics(6)
	if len(va) != 7 {
		t.Errorf("VideoAnalytics size %d, want 7", len(va))
	}
	light := 0
	for _, n := range va[1:] {
		if n == model.MobileNetV2 || n == model.SqueezeNet {
			light++
		}
	}
	if light != 6 {
		t.Errorf("VideoAnalytics has %d light models, want 6", light)
	}
	tiers := MemoryTiers()
	if len(tiers) != 3 || len(tiers[0]) != 2 || len(tiers[1]) != 6 || len(tiers[2]) != 10 {
		t.Errorf("MemoryTiers = %v", tiers)
	}
	for _, tier := range tiers {
		if _, err := Instantiate(tier); err != nil {
			t.Errorf("tier %v: %v", tier, err)
		}
	}
}
