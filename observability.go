package hetero2pipe

import (
	"context"
	"io"
	"net"
	"net/http"

	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/obs/server"
	"hetero2pipe/internal/stream"
	"hetero2pipe/internal/trace"
)

// This file is the observability facade: span tracing re-exports and the
// live HTTP server. Metrics re-exports live in hetero2pipe.go next to the
// run API; everything here is additive and optional — a System without
// WithMetrics/WithSpans serves probes and pprof but 404s the data
// endpoints.

// SpanRecorder re-exports the lock-free bounded span ring. Attach one with
// WithSpans; read it with Spans/WriteOTLP/StreamChromeTraceFromSpans or
// serve it from the observability server's /spans endpoint.
type SpanRecorder = obs.SpanRecorder

// SpanData re-exports one finished span as stored in the recorder ring.
type SpanData = obs.SpanData

// NewSpanRecorder creates a span recorder whose ring retains the last
// capacity finished spans (capacity ≤ 0 selects obs.DefaultSpanCapacity,
// 65536 — several full stream runs of slice spans).
func NewSpanRecorder(capacity int) *SpanRecorder { return obs.NewSpanRecorder(capacity) }

// WriteOTLP writes the recorder's spans as an OTLP/JSON trace document
// (resourceSpans → scopeSpans → spans), importable by any OpenTelemetry
// pipeline or by Jaeger's JSON upload.
func WriteOTLP(w io.Writer, rec *SpanRecorder, service string) error {
	return obs.WriteOTLP(w, rec, service)
}

// StreamChromeTraceFromSpans converts a traced stream run into Chrome
// trace-event JSON — the same document StreamChromeTrace renders from
// collected WindowTraces, reconstructed from the span ring alone, so runs
// traced with WithSpans need no CollectWindowTraces to visualise.
func StreamChromeTraceFromSpans(rec *SpanRecorder) ([]byte, error) {
	return trace.StreamChromeFromSpans(rec.Spans())
}

// TraceID re-exports the per-request distributed trace identifier
// (WithRequestTracing): stable across interrupts, requeues and fleet
// failover, rendered as 16 hex digits.
type TraceID = stream.TraceID

// NewTraceID derives the deterministic trace ID for the request at the
// given fleet-wide index — what tracing assigns to requests whose Trace
// field is zero.
func NewTraceID(index int) TraceID { return stream.NewTraceID(index) }

// ParseTraceID parses a 16-hex-digit trace ID (the /requests?trace= form).
func ParseTraceID(s string) (TraceID, error) { return stream.ParseTraceID(s) }

// RequestTimeline re-exports one request's lifecycle record: trace ID,
// phase events on the virtual clock and the sojourn decomposition. Found on
// StreamResult.Timelines, FleetResult.Timelines and in RequestTraces.
type RequestTimeline = stream.RequestTimeline

// RequestPhaseEvent re-exports one lifecycle transition of a timeline.
type RequestPhaseEvent = stream.PhaseEvent

// SojournBreakdown re-exports the sojourn decomposition: queue wait,
// backoff, interrupt loss, exec and handoff transit (virtual clock, summing
// exactly to the sojourn) plus attributed plan wall time.
type SojournBreakdown = stream.Breakdown

// RequestTraceStore re-exports the bounded flight recorder of completed
// request timelines behind the /requests endpoint.
type RequestTraceStore = stream.TraceStore

// RequestTraces returns the system's flight-recorder store, or nil when the
// system was built without WithRequestTracing.
func (sys *System) RequestTraces() *RequestTraceStore { return sys.cfg.stream.Traces }

// SLOMonitor re-exports the per-class error-budget monitor (WithSLOBudget):
// lifetime miss fractions, windowed burn rates and remaining budget per SLO
// class, served by the /slo endpoint.
type SLOMonitor = obs.SLOMonitor

// SLOReport re-exports the monitor's snapshot (the /slo payload);
// SLOClassReport is one class's row.
type SLOReport = obs.SLOReport

// SLOClassReport re-exports one class's budget/burn-rate row.
type SLOClassReport = obs.SLOClassReport

// DecompositionReport re-exports the run-level sojourn-decomposition
// roll-up populated on RunReport and FleetReport under request tracing.
type DecompositionReport = obs.DecompositionReport

// SLOBudgets returns the system's SLO monitor, or nil when the system was
// built without WithSLOBudget.
func (sys *System) SLOBudgets() *SLOMonitor { return sys.cfg.stream.SLOMonitor }

// ObsHandler returns the system's observability HTTP handler:
//
//	/metrics        Prometheus text exposition (WithMetrics)
//	/vars           expvar JSON (PublishExpvar payloads included)
//	/debug/pprof/   pprof index and profiles
//	/healthz        liveness (always 200)
//	/readyz         200 while a stream run accepts admissions, else 503
//	/windows        live WindowStats of the in-flight run; ?sse=1 streams
//	                them as Server-Sent Events
//	/spans          the span ring as OTLP/JSON (WithSpans)
//	/fleet          live fleet status: per-device assignment, completion
//	                and handoff counts (WithFleet)
//	/requests       request timelines (WithRequestTracing): recent by
//	                default (?n= caps), one by ?trace=ID, the worst
//	                sojourns by ?worst=N, or live SSE with ?sse=1
//	/slo            per-class error budgets and burn rates (WithSLOBudget)
//
// Mount it on any mux or server; ServeObs runs a standalone one.
func (sys *System) ObsHandler() http.Handler {
	return server.Handler(sys.serverConfig())
}

// serverConfig assembles the obs server wiring shared by ObsHandler and
// ServeObs. The feed is device 0's window feed.
func (sys *System) serverConfig() server.Config {
	return server.Config{
		Metrics: sys.cfg.metrics,
		Spans:   sys.cfg.spans,
		Feed:    sys.dev.Feed(),
		Fleet:   sys.fl,
		Traces:  sys.cfg.stream.Traces,
		SLO:     sys.cfg.stream.SLOMonitor,
		Service: sys.dev.SoC().Name,
	}
}

// ServeObs serves ObsHandler on addr until ctx is cancelled, then shuts
// down gracefully. addr may be ":0"; onListen (optional) receives the
// bound address before serving starts.
func (sys *System) ServeObs(ctx context.Context, addr string, onListen func(net.Addr)) error {
	return server.Serve(ctx, addr, sys.serverConfig(), onListen)
}
