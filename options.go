package hetero2pipe

import (
	"log/slog"
	"time"

	"hetero2pipe/internal/core"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// config is the assembled system configuration NewSystem builds from its
// Option list.
type config struct {
	planner core.Options
	stream  stream.Config
	metrics *obs.Registry
	logger  *slog.Logger
	spans   *obs.SpanRecorder
	// fleetSize > 0 assembles a sharded serving fleet (WithFleet);
	// fleetPolicy names its routing policy ("" = consistent hashing).
	fleetSize   int
	fleetPolicy string
	// tracing arms per-request distributed tracing (WithRequestTracing);
	// traceCap bounds the flight-recorder store.
	tracing  bool
	traceCap int
	// sloBudgets maps SLO class names to target miss fractions
	// (WithSLOBudget); non-empty arms the SLO monitor.
	sloBudgets map[string]float64
}

func defaultConfig() config {
	return config{planner: core.DefaultOptions(), stream: stream.DefaultConfig()}
}

// Option configures a System. Options compose left to right; later options
// override earlier ones.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithParallelism bounds the planner's worker pool (1 = strictly
// sequential, ≤ 0 = auto-size to GOMAXPROCS). The planned result is
// byte-identical at every setting — the engine merges parallel work in
// deterministic index order — so this is purely a planning-latency knob.
func WithParallelism(n int) Option {
	return optionFunc(func(c *config) { c.planner.Parallelism = n })
}

// WithPlanCache bounds an LRU memo of whole plans keyed by the canonical
// window signature (SoC degradation epoch + planner options fingerprint +
// ordered model digests): a window whose signature matches a memoized plan
// skips the entire two-step optimisation and receives a deep copy,
// byte-identical to replanning. The cache empties on any state-changing
// degradation event (the epoch bump retires every prior signature), so it
// pays off in the steady state — recurring request mixes against a stable
// SoC. n ≤ 0 disables the cache (the default).
func WithPlanCache(n int) Option {
	return optionFunc(func(c *config) { c.planner.PlanCache = n })
}

// WithWindow caps how many queued requests each online planning window
// takes (RunStream). Larger windows give the planner more freedom but grow
// its search space.
func WithWindow(n int) Option {
	return optionFunc(func(c *config) { c.stream.MaxWindow = n })
}

// WithMaxBatch bounds Appendix-D coalescing of lightweight same-model
// requests inside each planning window; 1 disables batching.
func WithMaxBatch(n int) Option {
	return optionFunc(func(c *config) { c.stream.MaxBatch = n })
}

// WithDegradationEvents injects degradation events (thermal throttle,
// frequency scaling, processor offline/online, bus squeeze) on the virtual
// clock of every RunStream call whose StreamConfig carries no events of its
// own. Build events directly or parse them with ParseEvents.
func WithDegradationEvents(events ...Event) Option {
	return optionFunc(func(c *config) { c.stream.Events = append([]soc.Event(nil), events...) })
}

// WithMetrics attaches a metrics registry to the system: the planner
// (plan wall-time, DP cells, cache hit ratio), the executor (slices,
// slowdown distribution, bubble time, admission stalls, peak memory) and
// the stream scheduler (per-window latency, replans, requeues, deadline
// misses) all record into it. Snapshot the registry at any time, or
// export it with WritePrometheus / PublishExpvar. Nil disables metrics
// (the default); instruments on a nil registry are no-ops.
func WithMetrics(reg *MetricsRegistry) Option {
	return optionFunc(func(c *config) { c.metrics = reg })
}

// WithLogger attaches a structured logger to the system: the planner (plan
// completions, debug), the executor (admission stalls, debug) and the
// stream scheduler (degradation events applied at info; window interrupts,
// plan-retry backoffs and deadline misses at warn; window completions at
// debug) emit leveled records into it. When span tracing is armed
// (WithSpans) every record carries the active span id under the "span"
// key. Nil disables logging (the default).
func WithLogger(l *slog.Logger) Option {
	return optionFunc(func(c *config) { c.logger = l })
}

// WithSpans attaches a span recorder to the system: every Run/RunStream
// call records a tree of spans (stream_run → window → plan/partition/
// dp_row, execute → slice, plus plan_retry/replan/requeue markers) into
// the recorder's bounded lock-free ring. Export the ring with WriteOTLP,
// convert it to a Chrome trace with StreamChromeTraceFromSpans, or serve
// it live from the observability server's /spans endpoint. Nil disables
// tracing (the default) at no per-call cost beyond a context lookup.
func WithSpans(rec *SpanRecorder) Option {
	return optionFunc(func(c *config) { c.spans = rec })
}

// WithFleet assembles an n-device sharded serving fleet around the system:
// device 0 ("dev0") is the system's SoC, devices 1..n−1 cycle the mixed
// mobile presets (Kirin 990, Snapdragon 778G, Snapdragon 870). Every device
// gets its own planner, plan cache, window feed and a `device`-labeled view
// of the system's metrics registry. Run requests across the fleet with
// RunFleet; inspect it live on the observability server's /fleet endpoint.
// n ≤ 0 disables the fleet (the default).
func WithFleet(n int) Option {
	return optionFunc(func(c *config) { c.fleetSize = n })
}

// WithObjective selects the planning mode for Run, RunStream and RunFleet:
// ObjectiveMakespan (the default) plans the min-makespan schedule,
// ObjectiveFrontier enumerates the Pareto frontier over (makespan,
// throughput, energy, peak memory) and executes the point selected by the
// governing SLO class (WithSLOClass, or per-request StreamRequest.SLO).
func WithObjective(m ObjectiveMode) Option {
	return optionFunc(func(c *config) { c.stream.Objective = m })
}

// WithSLOClass sets the default SLO class for frontier planning
// (WithObjective): the class applied to offline Run calls and to stream
// requests that carry none. Requests with their own StreamRequest.SLO
// override it per window via strictest-class resolution. Unset defaults to
// SLOLatencyCritical, whose selected plans are byte-identical to makespan
// planning.
func WithSLOClass(class SLOClass) Option {
	return optionFunc(func(c *config) { c.stream.SLO = class })
}

// WithRequestTracing arms per-request distributed tracing: every stream and
// fleet request gets a stable trace ID at admission, a lifecycle timeline of
// phase events on the virtual clock (arrived → queued → window-admitted →
// planned → executing → interrupted/requeued → handed-off →
// completed/missed), and a sojourn decomposition — queue wait, retry
// backoff, interrupt loss, exec and handoff transit, summing exactly to the
// measured sojourn — plus trace-ID exemplars on the sojourn histogram
// (WithMetrics). Timelines land on StreamResult.Timelines /
// FleetResult.Timelines and in the system's flight-recorder store
// (RequestTraces), which retains the last capacity completed timelines
// (≤ 0 selects the default, 1024) and the worst-sojourn shortlist — the
// observability server's /requests endpoint. Under WithFleet, trace IDs
// survive failover: a handed-off request yields one fleet-wide timeline
// spanning every device it touched.
func WithRequestTracing(capacity int) Option {
	return optionFunc(func(c *config) {
		c.tracing = true
		c.traceCap = capacity
	})
}

// WithSLOBudget registers an error budget for one SLO class: target is the
// tolerated deadline-miss fraction (e.g. 0.01 = 99% on-time). Budgeted
// classes are monitored per completion — lifetime miss fractions, a
// windowed burn rate (how many times faster than budget the class is
// burning) and remaining budget — served by the observability server's /slo
// endpoint and SLOBudgets. Repeat the option to budget several classes.
func WithSLOBudget(class SLOClass, target float64) Option {
	return optionFunc(func(c *config) {
		if c.sloBudgets == nil {
			c.sloBudgets = make(map[string]float64)
		}
		c.sloBudgets[class.String()] = target
	})
}

// WithIncrementalReplan toggles incremental replanning after degradation
// events (on by default). When on, the planner memoizes each model's
// partition-DP table and, after an event touching processor set P, resumes
// the DP at the first affected stage instead of refilling from row zero —
// byte-identical to planning from scratch (the differential suite pins it),
// so this is purely a replan-latency knob. Off drops the memo entirely.
func WithIncrementalReplan(on bool) Option {
	return optionFunc(func(c *config) { c.planner.IncrementalReplan = on })
}

// WithBeam bounds the planner's candidate sweep to the width best candidates
// under a cheap proxy pricing, then escalates until the winner is provably
// within (1+epsilon)× of the exact sweep's makespan — the anytime/beam mode
// for large windows. width ≥ the candidate count (or ≤ 0) reproduces the
// exact plan byte-identically; epsilon 0 escalates until the bound closes
// exactly or the sweep exhausts.
func WithBeam(width int, epsilon float64) Option {
	return optionFunc(func(c *config) {
		c.planner.BeamWidth = width
		c.planner.BeamEpsilon = epsilon
	})
}

// WithPlanDeadline arms a wall-clock budget on each window's candidate
// sweep: once it elapses, the sweep stops escalating and returns the best
// plan priced so far. The deadline voids both byte-identical determinism and
// the beam regret bound — it is the latency-first trade for interactive
// deployments. d ≤ 0 disarms (the default).
func WithPlanDeadline(d time.Duration) Option {
	return optionFunc(func(c *config) { c.planner.AnytimeDeadline = d })
}

// PlannerOptions is the full planner configuration (an alias of
// core.Options) for WithPlannerOptions. Most callers never need it — the
// functional options cover the common knobs.
type PlannerOptions = core.Options

// DefaultPlannerOptions returns the full Hetero²Pipe planner configuration
// — the same defaults NewSystem applies with no options.
func DefaultPlannerOptions() PlannerOptions { return core.DefaultOptions() }

// WithPlannerOptions replaces the full planner configuration — the escape
// hatch for ablations (core.NoCTOptions) and custom estimators.
func WithPlannerOptions(o PlannerOptions) Option {
	return optionFunc(func(c *config) { c.planner = o })
}
