package hetero2pipe

import (
	"errors"
	"fmt"
	"strings"
)

// Policy selects the fleet's request-routing strategy (WithFleetPolicy).
// The zero value is consistent hashing, the default.
type Policy int

const (
	// PolicyHash shards requests by consistent hashing over model digests:
	// stable ownership, minimal key movement when devices come and go.
	PolicyHash Policy = iota
	// PolicyLeastSojourn routes each request to the device with the lowest
	// accumulated sojourn estimate — load balancing by predicted latency.
	PolicyLeastSojourn
	// PolicyAffinity pins each model to a device so recurring windows hit
	// that device's plan cache.
	PolicyAffinity
)

// ErrUnknownPolicy is returned by ParsePolicy for a name outside the known
// set.
var ErrUnknownPolicy = errors.New("hetero2pipe: unknown fleet policy")

// String names the policy the way ParsePolicy (and the CLI -policy flag)
// accepts it.
func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyLeastSojourn:
		return "least-sojourn"
	case PolicyAffinity:
		return "affinity"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a CLI/config name to a Policy. The empty string parses
// to PolicyHash (the default); unknown names return an error wrapping
// ErrUnknownPolicy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "hash":
		return PolicyHash, nil
	case "least-sojourn":
		return PolicyLeastSojourn, nil
	case "affinity":
		return PolicyAffinity, nil
	}
	return 0, fmt.Errorf("%w: %q (want hash, least-sojourn or affinity)", ErrUnknownPolicy, s)
}

// WithFleetPolicy selects the fleet's routing policy: PolicyHash
// (consistent hashing, the default), PolicyLeastSojourn (balance
// accumulated latency estimates) or PolicyAffinity (pin models to devices
// so recurring windows hit the plan cache).
func WithFleetPolicy(p Policy) Option {
	return optionFunc(func(c *config) { c.fleetPolicy = p.String() })
}

// WithFleetPolicyName selects the fleet's routing policy by its string
// name; unknown names surface as an error from NewSystem.
//
// Deprecated: use WithFleetPolicy with a typed Policy value, parsing CLI
// input with ParsePolicy.
func WithFleetPolicyName(name string) Option {
	return optionFunc(func(c *config) { c.fleetPolicy = name })
}
