package hetero2pipe_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetero2pipe"
	"hetero2pipe/internal/fleet"
	"hetero2pipe/internal/model"
	"hetero2pipe/internal/obs"
	"hetero2pipe/internal/obs/server"
	"hetero2pipe/internal/pipeline"
	"hetero2pipe/internal/soc"
	"hetero2pipe/internal/stream"
)

// sseOpen opens a cancellable SSE request against url.
func sseOpen(t *testing.T, url string) *http.Response {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sseRead accumulates the SSE body until marker has appeared want times (the
// stream stays open — it only ends when the client disconnects).
func sseRead(t *testing.T, resp *http.Response, marker string, want int) string {
	t.Helper()
	buf := make([]byte, 4096)
	var acc strings.Builder
	deadline := time.After(30 * time.Second)
	for strings.Count(acc.String(), marker) < want {
		select {
		case <-deadline:
			t.Fatalf("SSE delivered %d %q events, want %d; got:\n%s",
				strings.Count(acc.String(), marker), marker, want, acc.String())
		default:
		}
		n, err := resp.Body.Read(buf)
		if n > 0 {
			acc.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	if got := strings.Count(acc.String(), marker); got < want {
		t.Fatalf("SSE delivered %d %q events, want %d", got, marker, want)
	}
	return acc.String()
}

// TestRequestTracingFacadeEndToEnd drives WithRequestTracing/WithSLOBudget
// through the public facade: a traced stream run must populate the flight
// recorder and the SLO monitor, and the observability server must serve the
// /requests and /slo endpoints consistently with the run's labeled metrics.
func TestRequestTracingFacadeEndToEnd(t *testing.T) {
	reg := hetero2pipe.NewMetricsRegistry("h2pipe")
	sys, err := hetero2pipe.NewSystem("Kirin990",
		hetero2pipe.WithMetrics(reg),
		hetero2pipe.WithRequestTracing(0),
		hetero2pipe.WithSLOBudget(hetero2pipe.SLOLatencyCritical, 0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.RequestTraces() == nil {
		t.Fatal("WithRequestTracing armed no trace store")
	}
	if sys.SLOBudgets() == nil {
		t.Fatal("WithSLOBudget armed no monitor")
	}

	reqs := burst(t, "ResNet50", "SqueezeNet", "GoogLeNet", "MobileNetV2")
	reqs[0].Deadline = time.Nanosecond // guaranteed miss
	for i := 1; i < len(reqs); i++ {
		reqs[i].Deadline = time.Minute // guaranteed hit
	}
	res, err := sys.RunStream(reqs, hetero2pipe.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timelines) != len(reqs) {
		t.Fatalf("%d timelines, want %d", len(res.Timelines), len(reqs))
	}
	for i, tl := range res.Timelines {
		if !tl.Completed {
			t.Fatalf("timeline %d incomplete", i)
		}
		if got := tl.Breakdown.VirtualSum(); got != tl.Sojourn {
			t.Errorf("timeline %d decomposition %v != sojourn %v", i, got, tl.Sojourn)
		}
	}
	if res.Timelines[0].SLO != "latency-critical" || !res.Timelines[0].Missed {
		t.Errorf("timeline 0 should be a missed latency-critical request: %+v", res.Timelines[0])
	}

	srv := httptest.NewServer(sys.ObsHandler())
	defer srv.Close()

	// /requests default listing.
	code, body := httpGet(t, srv.URL+"/requests")
	if code != 200 {
		t.Fatalf("GET /requests = %d, want 200", code)
	}
	var listing struct {
		Total    int                           `json:"total"`
		Requests []hetero2pipe.RequestTimeline `json:"requests"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("/requests not JSON: %v\n%s", err, body)
	}
	if listing.Total != len(reqs) || len(listing.Requests) != len(reqs) {
		t.Errorf("/requests total=%d len=%d, want %d", listing.Total, len(listing.Requests), len(reqs))
	}

	// /requests?trace=ID returns exactly that timeline; a bogus ID 404s.
	want := res.Timelines[0]
	code, body = httpGet(t, srv.URL+"/requests?trace="+want.Trace)
	if code != 200 {
		t.Fatalf("GET /requests?trace=%s = %d, want 200", want.Trace, code)
	}
	var one hetero2pipe.RequestTimeline
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if one.Trace != want.Trace || one.Model != want.Model || len(one.Events) != len(want.Events) {
		t.Errorf("/requests?trace returned a different timeline: %+v", one)
	}
	if code, _ := httpGet(t, srv.URL+"/requests?trace=00000000000000ff"); code != 404 {
		t.Errorf("GET /requests with unknown trace = %d, want 404", code)
	}

	// /requests?worst=1 surfaces the fattest sojourn.
	code, body = httpGet(t, srv.URL+"/requests?worst=1")
	if code != 200 {
		t.Fatalf("GET /requests?worst=1 = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Requests) != 1 {
		t.Fatalf("?worst=1 returned %d rows", len(listing.Requests))
	}
	for _, tl := range res.Timelines {
		if tl.Sojourn > listing.Requests[0].Sojourn {
			t.Errorf("?worst=1 returned sojourn %v but %s is worse (%v)",
				listing.Requests[0].Sojourn, tl.Trace, tl.Sojourn)
		}
	}
	if code, _ := httpGet(t, srv.URL+"/requests?worst=frog"); code != 400 {
		t.Errorf("GET /requests?worst=frog = %d, want 400", code)
	}

	// /slo agrees with the labeled deadline-miss counter.
	code, body = httpGet(t, srv.URL+"/slo")
	if code != 200 {
		t.Fatalf("GET /slo = %d, want 200", code)
	}
	var slo hetero2pipe.SLOReport
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, body)
	}
	if len(slo.Classes) != 1 {
		t.Fatalf("/slo classes = %+v, want the one budgeted class", slo.Classes)
	}
	c := slo.Classes[0]
	if c.Class != "latency-critical" || c.Target != 0.5 {
		t.Errorf("/slo class row %+v, want latency-critical@0.5", c)
	}
	if c.Total != uint64(len(reqs)) || c.Missed != 1 {
		t.Errorf("/slo counts %d/%d, want 1/%d", c.Missed, c.Total, len(reqs))
	}
	missSeries := obs.SeriesName("stream_deadline_miss_total", "slo", "latency-critical")
	if got := reg.Snapshot().Counters[missSeries]; got != c.Missed {
		t.Errorf("%s = %d, /slo says %d", missSeries, got, c.Missed)
	}
	wantFrac := float64(c.Missed) / float64(c.Total)
	if c.MissFraction != wantFrac {
		t.Errorf("/slo miss fraction %v, want %v", c.MissFraction, wantFrac)
	}

	// A system without the options 404s both endpoints.
	plain, err := hetero2pipe.NewSystem("Kirin990")
	if err != nil {
		t.Fatal(err)
	}
	if plain.RequestTraces() != nil || plain.SLOBudgets() != nil {
		t.Error("plain system armed tracing state")
	}
	plainSrv := httptest.NewServer(plain.ObsHandler())
	defer plainSrv.Close()
	if code, _ := httpGet(t, plainSrv.URL+"/requests"); code != 404 {
		t.Errorf("GET /requests unarmed = %d, want 404", code)
	}
	if code, _ := httpGet(t, plainSrv.URL+"/slo"); code != 404 {
		t.Errorf("GET /slo unarmed = %d, want 404", code)
	}
}

// TestRequestTracingSSE covers /requests?sse=1: a subscriber connected
// before a run streams every completed timeline as a "request" event.
func TestRequestTracingSSE(t *testing.T) {
	sys, err := hetero2pipe.NewSystem("Kirin990", hetero2pipe.WithRequestTracing(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.ObsHandler())
	defer srv.Close()

	resp := sseOpen(t, srv.URL+"/requests?sse=1")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	res, err := sys.RunStream(burst(t, "SqueezeNet", "MobileNetV2"), hetero2pipe.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := sseRead(t, resp, "event: request\n", len(res.Timelines))
	if !strings.Contains(acc, `"trace"`) {
		t.Errorf("SSE payload is not a timeline:\n%.300s", acc)
	}
}

// TestRequestTraceFleetFailoverEndpoint pins the acceptance criterion end to
// end at the HTTP surface: after a fleet run with failover, querying
// /requests?trace=ID for a handed-off request returns its single stitched
// timeline including the pre-handoff device's phases.
func TestRequestTraceFleetFailoverEndpoint(t *testing.T) {
	reg := obs.NewRegistry("h2pipe")
	store := stream.NewTraceStore(0, 0)
	var events []soc.Event
	for _, p := range []string{"npu", "cpu-big", "gpu", "cpu-small"} {
		events = append(events, soc.Event{Kind: soc.EventProcessorOffline, Processor: p, At: 2 * time.Millisecond})
	}
	mk := func(name string, evs []soc.Event) *fleet.Device {
		dev, err := fleet.NewDevice(fleet.DeviceSpec{
			Name: name,
			SoC:  soc.Kirin990(),
			Stream: stream.Config{
				MaxWindow: 3, MaxBatch: 1, MaxRetries: 2,
				RetryBackoff:   100 * time.Microsecond,
				Events:         evs,
				RequestTracing: true,
				Traces:         store,
			},
		}, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return dev
	}
	fl, err := fleet.New([]*fleet.Device{mk("dev0", events), mk("dev1", nil)}, fleet.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	zoo := []string{model.ResNet50, model.SqueezeNet, model.GoogLeNet, model.MobileNetV2}
	requests := make([]stream.Request, 16)
	for i := range requests {
		requests[i] = stream.Request{
			Model:   model.MustByName(zoo[i%len(zoo)]),
			Arrival: time.Duration(i) * 500 * time.Microsecond,
		}
	}
	res, err := fl.Run(requests, pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Handoffs == 0 {
		t.Fatal("no handoffs; scenario broken")
	}

	srv := httptest.NewServer(server.Handler(server.Config{Traces: store}))
	defer srv.Close()

	probed := 0
	for fi, tl := range res.Timelines {
		if !tl.Handoff {
			continue
		}
		probed++
		code, body := httpGet(t, srv.URL+"/requests?trace="+tl.Trace)
		if code != 200 {
			t.Fatalf("GET /requests?trace=%s = %d, want 200", tl.Trace, code)
		}
		var got stream.RequestTimeline
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}
		if got.Trace != tl.Trace || !got.Handoff || !got.Completed {
			t.Fatalf("endpoint returned a non-stitched view for %s: %+v", tl.Trace, got)
		}
		// Pre-handoff device phases are present: dev0 events precede the
		// handed_off marker.
		devices := make(map[string]bool)
		sawHandoff := false
		for _, ev := range got.Events {
			devices[ev.Device] = true
			if ev.Phase == stream.PhaseHandedOff {
				sawHandoff = true
			}
			if !sawHandoff && ev.Device != "dev0" {
				t.Errorf("request %d: pre-handoff event %s on %q, want dev0", fi, ev.Phase, ev.Device)
			}
		}
		if !sawHandoff || !devices["dev0"] || !devices["dev1"] {
			t.Errorf("request %d timeline does not span both devices (handoff=%t devices=%v)",
				fi, sawHandoff, devices)
		}
		if got.Breakdown.VirtualSum() != got.Sojourn {
			t.Errorf("request %d served timeline breaks the sum invariant", fi)
		}
	}
	if probed == 0 {
		t.Fatal("no handed-off timeline to probe")
	}
}
